"""Pair-based STDP with lazy, event-driven traces.

The classic trace formulation (Morrison, Diesmann & Gerstner 2008):
each presynaptic neuron keeps a trace ``x`` and each postsynaptic
neuron a trace ``y``::

    x_i(t) = x_i(t - dt) * exp(-dt / tau_plus)   (+1 when i fires)
    y_j(t) = y_j(t - dt) * exp(-dt / tau_minus)  (+1 when j fires)

    on a pre spike  i:  w_ij -= a_minus * y_j(t)   (depression: post
                        fired *before* this pre spike)
    on a post spike j:  w_ij += a_plus  * x_i(t)   (potentiation: pre
                        fired *before* this post spike)

The exponential decay is *memoryless*, so the per-step multiplication
above never has to be materialised: a trace is fully described by its
value at the last event and that event's step index, and its value
``k`` steps later is obtained analytically in one multiply::

    x_i(t_last + k·dt) = x_i(t_last) · exp(-k·dt / tau)

This is the lazy scheme of Bautembach et al. ("Even Faster SNN
Simulation with Lazy+Event-driven Plasticity"): store per-neuron
``(last_update_step, trace_value)`` pairs, decay analytically only
when a pre/post neuron actually spikes, and defer every weight update
to a spike event. A silent step costs *nothing* — plasticity work
scales with spike traffic, not with neuron or synapse count.

:class:`PairSTDP` defaults to this deferred mode. ``deferred=False``
selects the dense reference schedule: identical event arithmetic (the
same analytic-decay reads, in the same order, so spike trains are
bit-identical between the two modes by construction) plus a full
materialisation of every trace every step — the historical per-step
cost profile, kept as the pinned baseline the benchmark and the CI
smoke compare the lazy path against.

Weights are clipped to ``[w_min, w_max]`` after each step's updates;
only the synapses touched by that step's events are clipped (untouched
weights cannot leave the range they were in).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import CheckpointError, ConfigurationError, SimulationError
from repro.network.projection import Projection


class PlasticityRule(abc.ABC):
    """A weight-update rule bound to one projection by the simulator."""

    def __init__(self) -> None:
        self.projection: Optional[Projection] = None

    def attach(self, projection: Projection) -> None:
        """Bind to a projection; allocates per-neuron state."""
        if self.projection is not None and self.projection is not projection:
            raise ConfigurationError(
                "plasticity rule is already attached to "
                f"{self.projection.name!r}"
            )
        self.projection = projection

    @abc.abstractmethod
    def step(
        self,
        fired_pre: np.ndarray,
        fired_post: np.ndarray,
        dt: float,
    ) -> None:
        """Advance one time step and apply the step's weight updates.

        ``fired_pre`` / ``fired_post`` are index arrays of the neurons
        that fired this step in the pre/post populations.
        """

    def publish_metrics(self, metrics) -> None:
        """Publish the rule's lifetime counters into a telemetry
        registry (collect-time only; the base rule has nothing to
        report)."""

    def snapshot(self) -> dict:
        """Mutable rule state (traces and weights) for checkpointing.

        The base refuses so a custom rule without checkpoint support
        fails loudly at capture time instead of resuming wrong.
        """
        raise CheckpointError(
            f"plasticity rule {type(self).__name__} does not support "
            "checkpointing"
        )

    def restore(self, payload: dict) -> None:
        """Overwrite the rule's mutable state from a :meth:`snapshot`."""
        raise CheckpointError(
            f"plasticity rule {type(self).__name__} does not support "
            "checkpointing"
        )


class PairSTDP(PlasticityRule):
    """All-to-all pair-based STDP with lazily-decayed traces."""

    def __init__(
        self,
        a_plus: float = 0.01,
        a_minus: float = 0.012,
        tau_plus: float = 20e-3,
        tau_minus: float = 20e-3,
        w_min: float = 0.0,
        w_max: float = 1.0,
        deferred: bool = True,
    ):
        super().__init__()
        if tau_plus <= 0 or tau_minus <= 0:
            raise ConfigurationError("STDP time constants must be positive")
        if w_min > w_max:
            raise ConfigurationError("w_min must not exceed w_max")
        self.a_plus = a_plus
        self.a_minus = a_minus
        self.tau_plus = tau_plus
        self.tau_minus = tau_minus
        self.w_min = w_min
        self.w_max = w_max
        self.deferred = deferred
        self._x_val: Optional[np.ndarray] = None
        self._x_last: Optional[np.ndarray] = None
        self._y_val: Optional[np.ndarray] = None
        self._y_last: Optional[np.ndarray] = None
        self._now = 0
        self._dt: Optional[float] = None
        #: Per-neuron trace updates skipped relative to the dense
        #: schedule (telemetry: ``plasticity_deferred_updates_total``).
        self.deferred_updates = 0
        #: Synaptic weight updates actually applied at spike events.
        self.applied_updates = 0
        #: Analytic trace evaluations performed (reads and bumps).
        self.trace_refreshes = 0
        #: Steps this rule has processed.
        self.steps_seen = 0

    # -- attachment --------------------------------------------------------

    def attach(self, projection: Projection) -> None:
        super().attach(projection)
        self._x_val = np.zeros(projection.pre.n, dtype=np.float64)
        self._x_last = np.zeros(projection.pre.n, dtype=np.int64)
        self._y_val = np.zeros(projection.post.n, dtype=np.float64)
        self._y_last = np.zeros(projection.post.n, dtype=np.int64)

    def _require_attached(self) -> None:
        if self.projection is None or self._x_val is None:
            raise SimulationError("rule not attached to a projection")

    # -- trace views -------------------------------------------------------

    def _materialise(self, values, last, tau) -> np.ndarray:
        """Every trace analytically decayed to the current step."""
        if self._dt is None:
            return values.copy()
        return values * np.exp((last - self._now) * (self._dt / tau))

    @property
    def pre_trace(self) -> np.ndarray:
        """The presynaptic traces at the current step (materialised)."""
        self._require_attached()
        return self._materialise(self._x_val, self._x_last, self.tau_plus)

    @property
    def post_trace(self) -> np.ndarray:
        """The postsynaptic traces at the current step (materialised)."""
        self._require_attached()
        return self._materialise(self._y_val, self._y_last, self.tau_minus)

    # -- the step ----------------------------------------------------------

    def step(
        self,
        fired_pre: np.ndarray,
        fired_post: np.ndarray,
        dt: float,
    ) -> None:
        self._require_attached()
        if self._dt is None:
            self._dt = dt
        elif dt != self._dt:
            raise SimulationError(
                f"PairSTDP stepped with dt={dt} after dt={self._dt}; lazy "
                "trace timestamps require a constant step size"
            )
        projection = self.projection
        weights = projection.weights
        self._now += 1
        now = self._now
        self.steps_seen += 1
        n_dense = self._x_val.size + self._y_val.size
        refreshes = 0

        # 1. depression: pre spikes read the post traces at this step
        dep_synapses = pot_synapses = None
        if fired_pre.size:
            dep_synapses = projection.synapse_indices_of(fired_pre)
            if dep_synapses.size:
                posts = projection.post_idx[dep_synapses]
                decay = np.exp(
                    (self._y_last[posts] - now) * (dt / self.tau_minus)
                )
                weights[dep_synapses] -= self.a_minus * (
                    self._y_val[posts] * decay
                )
                refreshes += posts.size

        # 2. potentiation: post spikes read the pre traces
        if fired_post.size:
            pot_synapses = projection.synapse_indices_into(fired_post)
            if pot_synapses.size:
                pres = projection.pre_of_synapses()[pot_synapses]
                decay = np.exp(
                    (self._x_last[pres] - now) * (dt / self.tau_plus)
                )
                weights[pot_synapses] += self.a_plus * (
                    self._x_val[pres] * decay
                )
                refreshes += pres.size

        # 3. bump the traces of the neurons that fired *this* step
        #    (after the updates: simultaneous pre/post pairs at zero
        #    time difference contribute nothing, the standard choice).
        #    A bump is the one moment a lazy trace is brought current.
        if fired_pre.size:
            self._x_val[fired_pre] = (
                self._x_val[fired_pre]
                * np.exp(
                    (self._x_last[fired_pre] - now) * (dt / self.tau_plus)
                )
                + 1.0
            )
            self._x_last[fired_pre] = now
            refreshes += fired_pre.size
        if fired_post.size:
            self._y_val[fired_post] = (
                self._y_val[fired_post]
                * np.exp(
                    (self._y_last[fired_post] - now) * (dt / self.tau_minus)
                )
                + 1.0
            )
            self._y_last[fired_post] = now
            refreshes += fired_post.size

        # 4. keep the touched weights in their representable range
        #    (after both updates, so a synapse hit by depression *and*
        #    potentiation this step is clipped once, on its net value)
        applied = 0
        for synapses in (dep_synapses, pot_synapses):
            if synapses is not None and synapses.size:
                applied += synapses.size
                weights[synapses] = np.clip(
                    weights[synapses], self.w_min, self.w_max
                )
        self.applied_updates += applied

        # 5. accounting: the dense schedule would have decayed every
        #    trace this step; whatever we did not evaluate was deferred.
        #    The dense reference mode materialises the full trace
        #    arrays (same reads as above, so identical numerics — the
        #    materialisation feeds nothing back) to pay the historical
        #    per-step cost it models.
        if self.deferred:
            self.trace_refreshes += refreshes
            if refreshes < n_dense:
                self.deferred_updates += n_dense - refreshes
        else:
            self._materialise(self._x_val, self._x_last, self.tau_plus)
            self._materialise(self._y_val, self._y_last, self.tau_minus)
            self.trace_refreshes += refreshes + n_dense

    # -- monitors ----------------------------------------------------------

    def mean_weight(self) -> float:
        """Mean synaptic weight (a learning-progress monitor)."""
        if self.projection is None:
            raise SimulationError("rule not attached to a projection")
        if self.projection.n_synapses == 0:
            return 0.0
        return float(self.projection.weights.mean())

    def publish_metrics(self, metrics) -> None:
        if self.projection is None:
            return
        labels = {"projection": self.projection.name}
        metrics.counter(
            "plasticity_deferred_updates_total",
            "Per-neuron trace updates skipped by lazy plasticity.",
            labels,
        ).set_total(self.deferred_updates)
        metrics.counter(
            "plasticity_applied_updates_total",
            "Synaptic weight updates applied at spike events.",
            labels,
        ).set_total(self.applied_updates)
        metrics.counter(
            "plasticity_trace_refreshes_total",
            "Analytic trace evaluations performed (reads and bumps).",
            labels,
        ).set_total(self.trace_refreshes)
        metrics.gauge(
            "plasticity_mean_weight",
            "Mean synaptic weight of the plastic projection.",
            labels,
        ).set(self.mean_weight())

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        if self.projection is None or self._x_val is None:
            raise CheckpointError("rule not attached to a projection")
        # Weights ride along because this rule is what mutates them;
        # static projections never change and need no capture.
        return {
            "x_val": self._x_val.copy(),
            "x_last": self._x_last.copy(),
            "y_val": self._y_val.copy(),
            "y_last": self._y_last.copy(),
            "now": self._now,
            "dt": self._dt,
            "deferred_updates": self.deferred_updates,
            "applied_updates": self.applied_updates,
            "trace_refreshes": self.trace_refreshes,
            "steps_seen": self.steps_seen,
            "weights": self.projection.weights.copy(),
        }

    def restore(self, payload: dict) -> None:
        if self.projection is None or self._x_val is None:
            raise CheckpointError("rule not attached to a projection")
        if "x_val" not in payload:
            raise CheckpointError(
                "checkpointed PairSTDP state predates the lazy-trace "
                "schema (no 'x_val'); re-capture with this version"
            )
        for name, target, dtype in (
            ("x_val", self._x_val, np.float64),
            ("x_last", self._x_last, np.int64),
            ("y_val", self._y_val, np.float64),
            ("y_last", self._y_last, np.int64),
            ("weights", self.projection.weights, np.float64),
        ):
            values = np.asarray(payload[name], dtype=dtype)
            if values.shape != target.shape:
                raise CheckpointError(
                    f"checkpointed {name} has shape {values.shape}, "
                    f"expected {target.shape}"
                )
            target[:] = values
        self._now = int(payload["now"])
        self._dt = payload["dt"]
        self.deferred_updates = int(payload.get("deferred_updates", 0))
        self.applied_updates = int(payload.get("applied_updates", 0))
        self.trace_refreshes = int(payload.get("trace_refreshes", 0))
        self.steps_seen = int(payload.get("steps_seen", 0))
