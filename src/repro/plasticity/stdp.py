"""Pair-based spike-timing-dependent plasticity.

The classic trace formulation (Morrison, Diesmann & Gerstner 2008):
each presynaptic neuron keeps a trace ``x`` and each postsynaptic
neuron a trace ``y``::

    x_i(t) = x_i(t - dt) * exp(-dt / tau_plus)   (+1 when i fires)
    y_j(t) = y_j(t - dt) * exp(-dt / tau_minus)  (+1 when j fires)

    on a pre spike  i:  w_ij -= a_minus * y_j(t)   (depression: post
                        fired *before* this pre spike)
    on a post spike j:  w_ij += a_plus  * x_i(t)   (potentiation: pre
                        fired *before* this post spike)

Weights are clipped to ``[w_min, w_max]``. Because the rule only ever
touches the synapses of neurons that fired this step, the cost is
proportional to spike traffic — the same event-driven structure as the
synapse-calculation phase it runs in.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro.errors import CheckpointError, ConfigurationError, SimulationError
from repro.network.projection import Projection


class PlasticityRule(abc.ABC):
    """A weight-update rule bound to one projection by the simulator."""

    def __init__(self) -> None:
        self.projection: Optional[Projection] = None

    def attach(self, projection: Projection) -> None:
        """Bind to a projection; allocates per-neuron state."""
        if self.projection is not None and self.projection is not projection:
            raise ConfigurationError(
                "plasticity rule is already attached to "
                f"{self.projection.name!r}"
            )
        self.projection = projection

    @abc.abstractmethod
    def step(
        self,
        fired_pre: np.ndarray,
        fired_post: np.ndarray,
        dt: float,
    ) -> None:
        """Advance traces one time step and apply weight updates.

        ``fired_pre`` / ``fired_post`` are index arrays of the neurons
        that fired this step in the pre/post populations.
        """

    def snapshot(self) -> dict:
        """Mutable rule state (traces and weights) for checkpointing.

        The base refuses so a custom rule without checkpoint support
        fails loudly at capture time instead of resuming wrong.
        """
        raise CheckpointError(
            f"plasticity rule {type(self).__name__} does not support "
            "checkpointing"
        )

    def restore(self, payload: dict) -> None:
        """Overwrite the rule's mutable state from a :meth:`snapshot`."""
        raise CheckpointError(
            f"plasticity rule {type(self).__name__} does not support "
            "checkpointing"
        )


class PairSTDP(PlasticityRule):
    """All-to-all pair-based STDP with exponential traces."""

    def __init__(
        self,
        a_plus: float = 0.01,
        a_minus: float = 0.012,
        tau_plus: float = 20e-3,
        tau_minus: float = 20e-3,
        w_min: float = 0.0,
        w_max: float = 1.0,
    ):
        super().__init__()
        if tau_plus <= 0 or tau_minus <= 0:
            raise ConfigurationError("STDP time constants must be positive")
        if w_min > w_max:
            raise ConfigurationError("w_min must not exceed w_max")
        self.a_plus = a_plus
        self.a_minus = a_minus
        self.tau_plus = tau_plus
        self.tau_minus = tau_minus
        self.w_min = w_min
        self.w_max = w_max
        self._x_pre: Optional[np.ndarray] = None
        self._y_post: Optional[np.ndarray] = None

    def attach(self, projection: Projection) -> None:
        super().attach(projection)
        self._x_pre = np.zeros(projection.pre.n, dtype=np.float64)
        self._y_post = np.zeros(projection.post.n, dtype=np.float64)

    @property
    def pre_trace(self) -> np.ndarray:
        """The presynaptic traces (read-only view for tests/monitors)."""
        if self._x_pre is None:
            raise SimulationError("rule not attached to a projection")
        return self._x_pre

    @property
    def post_trace(self) -> np.ndarray:
        """The postsynaptic traces."""
        if self._y_post is None:
            raise SimulationError("rule not attached to a projection")
        return self._y_post

    def step(
        self,
        fired_pre: np.ndarray,
        fired_post: np.ndarray,
        dt: float,
    ) -> None:
        if self.projection is None or self._x_pre is None:
            raise SimulationError("rule not attached to a projection")
        projection = self.projection
        weights = projection.weights

        # 1. decay the traces
        self._x_pre *= math.exp(-dt / self.tau_plus)
        self._y_post *= math.exp(-dt / self.tau_minus)

        # 2. depression: pre spikes read the post traces
        if fired_pre.size:
            synapses = projection.synapse_indices_of(fired_pre)
            if synapses.size:
                posts = projection.post_idx[synapses]
                weights[synapses] -= self.a_minus * self._y_post[posts]

        # 3. potentiation: post spikes read the pre traces
        if fired_post.size:
            synapses = projection.synapse_indices_into(fired_post)
            if synapses.size:
                pres = projection.pre_of_synapses()[synapses]
                weights[synapses] += self.a_plus * self._x_pre[pres]

        # 4. bump the traces of the neurons that fired *this* step
        #    (after the updates: simultaneous pre/post pairs at zero
        #    time difference contribute nothing, the standard choice)
        if fired_pre.size:
            self._x_pre[fired_pre] += 1.0
        if fired_post.size:
            self._y_post[fired_post] += 1.0

        # 5. keep weights in their hardware-representable range
        if fired_pre.size or fired_post.size:
            np.clip(weights, self.w_min, self.w_max, out=weights)

    def mean_weight(self) -> float:
        """Mean synaptic weight (a learning-progress monitor)."""
        if self.projection is None:
            raise SimulationError("rule not attached to a projection")
        if self.projection.n_synapses == 0:
            return 0.0
        return float(self.projection.weights.mean())

    def snapshot(self) -> dict:
        if self.projection is None or self._x_pre is None:
            raise CheckpointError("rule not attached to a projection")
        # Weights ride along because this rule is what mutates them;
        # static projections never change and need no capture.
        return {
            "x_pre": self._x_pre.copy(),
            "y_post": self._y_post.copy(),
            "weights": self.projection.weights.copy(),
        }

    def restore(self, payload: dict) -> None:
        if self.projection is None or self._x_pre is None:
            raise CheckpointError("rule not attached to a projection")
        for name, target in (
            ("x_pre", self._x_pre),
            ("y_post", self._y_post),
            ("weights", self.projection.weights),
        ):
            values = np.asarray(payload[name], dtype=np.float64)
            if values.shape != target.shape:
                raise CheckpointError(
                    f"checkpointed {name} has shape {values.shape}, "
                    f"expected {target.shape}"
                )
            target[:] = values
