"""Synaptic plasticity (STDP) — an extension the paper motivates.

The paper's introduction cites SNNs learning digit and object
recognition through spike-timing-dependent plasticity (Diehl & Cook;
Masquelier & Thorpe), and its related-work section discusses temporal
neurons whose synaptic weights "are trained based on the relative spike
timing". Flexon itself accelerates neuron computation and leaves
synapse calculation on the host — which is exactly where STDP lives —
so plastic networks run unchanged on the hardware backends: neuron
updates on (folded) Flexon, weight updates in the synapse-calculation
phase.

This package provides the classic pair-based STDP rule with
exponential traces and a small homeostasis helper, integrated with the
three-phase simulator via :meth:`repro.network.network.Network.
add_plasticity`.
"""

from repro.plasticity.stdp import PairSTDP, PlasticityRule

__all__ = ["PairSTDP", "PlasticityRule"]
