"""Fault-tolerant sharded simulation: one network across workers.

The layer cuts one :class:`~repro.network.network.Network` into
contiguous per-population slices (:class:`ShardPlan`), steps each slice
in min-delay windows with the synapse phase deferred to a barrier
(:class:`ShardRunner`), and coordinates N crash-recoverable worker
processes through that barrier (:class:`ShardCoordinator`) — with
composite checkpoints, kill-and-restart recovery, and graceful
degradation to single-process execution. The merged spike trains are
bit-identical to the single-process simulator, including across
restarts (property-tested).

:func:`simulate_sharded` runs the same protocol with every shard
in-process — the vehicle for daemonic sweep workers and cheap
property-test sweeps.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "CompositeCheckpoint": "repro.sharding.checkpoint",
    "InlineShardResult": "repro.sharding.runner",
    "ShardChaos": "repro.sharding.coordinator",
    "ShardCoordinator": "repro.sharding.coordinator",
    "ShardPlan": "repro.sharding.plan",
    "ShardRunner": "repro.sharding.runner",
    "ShardedRunResult": "repro.sharding.coordinator",
    "merge_spikes": "repro.sharding.runner",
    "merge_windows": "repro.sharding.runner",
    "simulate_sharded": "repro.sharding.runner",
    "window_digest": "repro.sharding.runner",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.sharding.checkpoint import CompositeCheckpoint
    from repro.sharding.coordinator import (
        ShardChaos,
        ShardCoordinator,
        ShardedRunResult,
    )
    from repro.sharding.plan import ShardPlan
    from repro.sharding.runner import (
        InlineShardResult,
        ShardRunner,
        merge_spikes,
        merge_windows,
        simulate_sharded,
        window_digest,
    )


def __getattr__(name: str):
    """Lazy exports (PEP 562): keep ``import repro.sharding`` light."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
