"""ShardRunner: one shard's slice of the network, stepped in windows.

A runner owns a contiguous slice of every population (see
:class:`~repro.sharding.plan.ShardPlan`) and executes the simulator's
three-phase loop in *windows* of ``plan.window`` steps, with the
synapse phase deferred to the window barrier:

1. **Window** (:meth:`ShardRunner.run_window`): for each step, run the
   stimulus phase (drawing every stimulus full-size so all shards'
   RNG streams stay identical to each other and to the single-process
   run, then injecting only the owned slice) and the neuron phase
   (advance the slice runtimes, record fired indices *globally*).
   No synaptic traffic is enqueued — within a window none of it can
   arrive anyway, because every delay is >= the window (the min-delay
   contract behind :meth:`DelayRing.flush_window`).

2. **Exchange**: the shard ships its per-step fired-index lists — the
   exact spike set whose deliveries would populate the finalised
   ``flush_events`` buckets — and receives the merged lists of every
   shard.

3. **Replay** (:meth:`ShardRunner.apply_exchange`): the merged window
   is replayed through the shard's sub-projections in the canonical
   single-process order — step-major, then global projection order —
   depositing each arrival at ring offset ``delay - (length - o)``.
   Because a sliced projection's flat synapse order is a subsequence
   of the full projection's, every per-element float accumulation
   happens in exactly the single-process order: the sums, the membrane
   trajectories, and therefore the spikes are bit-identical.

Exchanging fired *indices* instead of accumulated float windows is the
load-bearing choice: summing per-shard float windows at the merge
point would impose a cross-shard addition order the single-process
path never performs, and ULPs would drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShardingError
from repro.network.backends import ReferenceBackend, RuntimeBackend
from repro.network.network import Network
from repro.network.population import Population
from repro.network.projection import Projection
from repro.network.recorder import SpikeRecorder
from repro.routing import DelayRing, SpikeRouter
from repro.sharding.plan import ShardPlan

#: Bumped when the per-shard snapshot payload layout changes.
SHARD_SNAPSHOT_VERSION = 1

#: A window payload: per owned population, one global-index array of
#: fired neurons for each step offset inside the window.
Window = Dict[str, List[np.ndarray]]


def window_digest(window: Window) -> str:
    """SHA-256 over a window payload (restart corruption check).

    A restarted shard deterministically re-produces windows the
    surviving shards already consumed; the coordinator compares the
    re-sent digest against the cached one, so silent divergence
    (corrupt checkpoint, nondeterministic backend) is detected instead
    of splitting the simulation's reality.
    """
    digest = hashlib.sha256()
    for name in sorted(window):
        digest.update(name.encode("utf-8"))
        for fired in window[name]:
            digest.update(b"|")
            digest.update(np.asarray(fired, dtype=np.int64).tobytes())
        digest.update(b";")
    return digest.hexdigest()


class ShardRunner:
    """Executes one shard's population slices window by window."""

    def __init__(
        self,
        network: Network,
        plan: ShardPlan,
        shard: int,
        backend: Optional[RuntimeBackend] = None,
        dt: float = 1e-4,
        seed: int = 0,
    ):
        backend = backend if backend is not None else ReferenceBackend()
        if not isinstance(backend, RuntimeBackend):
            raise ConfigurationError(
                f"backend {backend.name!r} does not expose population "
                "runtimes and cannot run a shard (snapshots would be "
                "impossible)"
            )
        self.plan = plan
        self.shard = shard
        self.dt = dt
        self.seed = seed
        self._owned = plan.owned(shard)
        self._backend = backend
        self.rng = np.random.default_rng(seed)
        self.recorder = SpikeRecorder()
        self._step = 0

        # The local view: slice-sized populations, assembled directly
        # (builder validation would reject slice projections whose pre
        # endpoint is the *full* population — which is exactly what we
        # want: global pre indices, sliced post).
        local = Network(network.name)
        for name, (lo, hi) in self._owned.items():
            model = network.populations[name].model
            local.populations[name] = Population(name, hi - lo, model)

        replay: List[Tuple[str, Projection, str]] = []
        for projection in network.projections:
            post_name = projection.post.name
            if post_name not in self._owned:
                continue
            lo, hi = self._owned[post_name]
            mask = (projection.post_idx >= lo) & (projection.post_idx < hi)
            if not mask.any():
                continue
            # The mask preserves the projection's flat synapse order,
            # and Projection's stable re-sort leaves an already-sorted
            # subsequence untouched — accumulation order is pinned.
            sub = Projection(
                projection.pre,
                local.populations[post_name],
                projection.pre_of_synapses()[mask],
                projection.post_idx[mask] - lo,
                projection.weights[mask],
                projection.delays[mask],
                projection.syn_type,
                name=f"{projection.name}[shard{shard}]",
            )
            local.projections.append(sub)
            replay.append((projection.pre.name, sub, post_name))

        self.network = local
        backend.prepare(local)

        # Rings are sized from the FULL network's delay bounds: the
        # synapses that happen to land on this slice could have a
        # narrower delay range, and ring geometry must agree across
        # shards for snapshots and replay offsets to compose.
        bounds = SpikeRouter.delay_bounds(network)
        rings: Dict[str, DelayRing] = {}
        for name, (lo, hi) in self._owned.items():
            min_delay, max_delay = bounds.get(name, (1, 1))
            rings[name] = DelayRing(
                hi - lo,
                network.populations[name].n_synapse_types,
                max_delay,
                min_delay=min_delay,
            )
        self._router = SpikeRouter(rings)
        for name, runtime in backend.runtimes.items():
            runtime.bind_ring(self._router.ring(name))

        # Per-step work lists, resolved once (simulator discipline).
        self._stimuli = []
        for stimulus in network.stimuli:
            target = stimulus.target.name
            if target in self._owned:
                lo, hi = self._owned[target]
                ring = rings[target]
            else:
                lo = hi = 0
                ring = None
            self._stimuli.append((stimulus, ring, lo, hi, stimulus.syn_type))
        self._populations = [
            (name, rings[name], self._owned[name][0]) for name in self._owned
        ]
        self._replay = [
            (pre_name, sub, rings[post_name], sub.syn_type)
            for pre_name, sub, post_name in replay
        ]

    # -- properties --------------------------------------------------------

    @property
    def step(self) -> int:
        """Global steps simulated so far."""
        return self._step

    @property
    def router(self) -> SpikeRouter:
        return self._router

    @property
    def backend(self) -> RuntimeBackend:
        return self._backend

    def owned(self) -> Dict[str, Tuple[int, int]]:
        """This shard's non-empty ``{population: (lo, hi)}`` slices."""
        return dict(self._owned)

    # -- the windowed loop -------------------------------------------------

    def run_window(
        self,
        length: int,
        on_step: Optional[Callable[[int], None]] = None,
    ) -> Window:
        """Run ``length`` steps of stimulus + neuron phases locally.

        Returns the window payload: per owned population, the global
        fired indices of each step. The synapse phase is *not* run —
        it happens in :meth:`apply_exchange` once every shard's window
        is merged. ``on_step(step)`` fires after each completed step
        (shard workers hook throttled heartbeats on it so the watchdog
        sees progress inside long windows).
        """
        if length < 1:
            raise ShardingError(f"window length must be >= 1, got {length}")
        fired: Window = {name: [] for name, _, _ in self._populations}
        rng = self.rng
        dt = self.dt
        advance = self._backend.advance
        for _ in range(length):
            step = self._step
            # Stimulus phase: every stimulus is drawn at full size so
            # the RNG stream is identical on every shard; only the
            # owned slice is injected (shifted to local indices).
            for stimulus, ring, lo, hi, syn_type in self._stimuli:
                idx, weights = stimulus.generate(step, rng)
                if ring is None or idx.size == 0:
                    continue
                mask = (idx >= lo) & (idx < hi)
                ring.enqueue_now(idx[mask] - lo, weights[mask], syn_type)
            # Neuron phase, in global population order.
            for name, ring, lo in self._populations:
                fired_mask = advance(name, ring.current(), dt)
                idx = np.nonzero(fired_mask)[0] + lo
                self.recorder.record_indices(name, step, idx)
                fired[name].append(idx)
            self._router.rotate_all()
            self._step += 1
            if on_step is not None:
                on_step(self._step)
        return fired

    def apply_exchange(self, merged: Window, length: int) -> None:
        """Replay a merged window through this shard's sub-projections.

        Canonical order — step offset major, then global projection
        order — with each arrival deposited ``delay - (length - o)``
        buckets ahead of the (already rotated) ring head. Every delay
        is >= ``length`` (<= the plan window), so offsets are >= 0; an
        offset-0 deposit is a spike arriving at the very next step.
        """
        for name, per_step in merged.items():
            if len(per_step) != length:
                raise ShardingError(
                    f"exchange for {name!r} has {len(per_step)} steps, "
                    f"expected {length}"
                )
        for offset in range(length):
            shift = length - offset
            for pre_name, sub, ring, syn_type in self._replay:
                per_step = merged.get(pre_name)
                if per_step is None:
                    raise ShardingError(
                        f"exchange is missing population {pre_name!r} "
                        f"needed by shard {self.shard}"
                    )
                pre_fired = np.asarray(per_step[offset], dtype=np.int64)
                if pre_fired.size == 0:
                    continue
                post_idx, weights, delays = sub.synapses_of(pre_fired)
                if post_idx.size:
                    ring.deposit(post_idx, weights, delays - shift, syn_type)

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> dict:
        """This shard's complete state at a barrier boundary.

        Only valid between :meth:`apply_exchange` and the next
        :meth:`run_window` — that is the point where rings, runtimes,
        RNG, and recorder are mutually consistent and no fired stash
        is in flight.
        """
        return {
            "version": SHARD_SNAPSHOT_VERSION,
            "shard": self.shard,
            "step": self._step,
            "backend": self._backend.name,
            "rng": self.rng.bit_generator.state,
            "rings": self._router.snapshot(),
            "runtimes": {
                name: runtime.snapshot()
                for name, runtime in self._backend.runtimes.items()
            },
            "spikes": self.recorder.snapshot(),
        }

    def restore(self, payload: dict) -> None:
        """Overwrite a freshly built runner from a :meth:`snapshot`."""
        version = payload.get("version")
        if version != SHARD_SNAPSHOT_VERSION:
            raise ShardingError(
                f"shard snapshot version {version!r} not supported "
                f"(expected {SHARD_SNAPSHOT_VERSION})"
            )
        if payload.get("shard") != self.shard:
            raise ShardingError(
                f"snapshot belongs to shard {payload.get('shard')!r}, "
                f"this runner is shard {self.shard}"
            )
        if payload.get("backend") != self._backend.name:
            raise ShardingError(
                f"snapshot was captured on backend "
                f"{payload.get('backend')!r}, this runner uses "
                f"{self._backend.name!r}"
            )
        runtimes = self._backend.runtimes
        if set(payload["runtimes"]) != set(runtimes):
            raise ShardingError(
                "snapshot populations do not match this shard's"
            )
        self.rng.bit_generator.state = payload["rng"]
        self._router.restore(payload["rings"])
        for name, runtime_payload in payload["runtimes"].items():
            runtimes[name].restore(runtime_payload)
        self.recorder.load(payload["spikes"])
        self._step = int(payload["step"])


# -- merging ---------------------------------------------------------------


def merge_windows(
    plan: ShardPlan, windows: Sequence[Window], length: int
) -> Window:
    """Merge per-shard windows into full-population fired lists.

    ``windows`` must be in shard order: each shard's slice is a
    contiguous ascending run of global indices, so concatenation in
    shard order reproduces exactly the ascending fired list
    ``np.nonzero`` yields single-process.
    """
    empty = np.empty(0, dtype=np.int64)
    merged: Window = {}
    for name in plan.population_order:
        per_step: List[np.ndarray] = []
        for offset in range(length):
            parts = [
                window[name][offset]
                for window in windows
                if name in window
            ]
            per_step.append(np.concatenate(parts) if parts else empty)
        merged[name] = per_step
    return merged


def merge_spikes(snapshots: Sequence[Dict[str, tuple]]) -> SpikeRecorder:
    """Compose per-shard recorder snapshots into one global recorder.

    Sorting by ``(step, neuron)`` reproduces the single-process
    recorder's layout exactly: it appends per step in ascending step
    order, and within a step ``np.nonzero`` emits ascending neuron
    indices. No (step, neuron) pair can repeat, so the sort is a
    bijection and the digest matches bit for bit.
    """
    recorder = SpikeRecorder()
    names = sorted({name for snap in snapshots for name in snap})
    merged = {}
    for name in names:
        steps = np.concatenate(
            [
                np.asarray(snap[name][0], dtype=np.int64)
                for snap in snapshots
                if name in snap
            ]
        )
        neurons = np.concatenate(
            [
                np.asarray(snap[name][1], dtype=np.int64)
                for snap in snapshots
                if name in snap
            ]
        )
        order = np.lexsort((neurons, steps))
        merged[name] = (steps[order], neurons[order])
    recorder.load(merged)
    return recorder


# -- in-process sharded execution ------------------------------------------


@dataclass
class InlineShardResult:
    """What an in-process sharded run produced."""

    spikes: SpikeRecorder
    n_steps: int
    n_shards: int
    window: int
    epochs: int
    #: True when a simulated shard kill was recovered mid-run.
    recovered: bool = False

    def total_spikes(self) -> int:
        return self.spikes.total_spikes()

    def digest(self) -> str:
        return self.spikes.digest()


def simulate_sharded(
    network: Network,
    n_shards: int,
    n_steps: int,
    backend_factory: Optional[Callable[[], RuntimeBackend]] = None,
    dt: float = 1e-4,
    seed: int = 0,
    plan: Optional[ShardPlan] = None,
    checkpoint_every: int = 1,
    kill_shard: Optional[int] = None,
    kill_epoch: Optional[int] = None,
    on_epoch: Optional[Callable[[int, int, int], None]] = None,
) -> InlineShardResult:
    """Run the full barrier protocol with every shard in this process.

    This is the same windowed-exchange-replay cycle the process-backed
    :class:`~repro.sharding.coordinator.ShardCoordinator` drives, and
    therefore produces the same bit-identical spikes — without spawn
    cost. Supervised sweep workers use it (they are daemonic and may
    not spawn grandchildren), and the Hypothesis property suite uses it
    to sweep partition counts, seeds, and kill epochs cheaply.

    ``kill_shard`` / ``kill_epoch`` simulate a crash: at the start of
    that epoch the victim runner is discarded, rebuilt from its last
    barrier snapshot (or from scratch), and caught up by re-running its
    windows against the coordinator-side exchange cache — verifying
    each re-produced window digest against the original, exactly as
    the process coordinator does. ``on_epoch(epoch, n_epochs, step)``
    fires after each barrier (sweep workers hook heartbeats on it).
    """
    factory = backend_factory or ReferenceBackend
    plan = plan if plan is not None else ShardPlan(network, n_shards)
    if plan.n_shards != n_shards:
        raise ConfigurationError(
            f"plan is cut for {plan.n_shards} shards, asked for {n_shards}"
        )
    runners = [
        ShardRunner(network, plan, shard, factory(), dt=dt, seed=seed)
        for shard in range(n_shards)
    ]
    n_epochs = plan.epochs_for(n_steps)
    exchange_cache: Dict[int, Window] = {}
    contrib_digests: Dict[int, List[str]] = {}
    snapshots: Optional[List[dict]] = None
    snapshot_epoch = -1
    recovered = False

    for epoch in range(n_epochs):
        length = plan.window_length(epoch, n_steps)
        if kill_shard is not None and epoch == kill_epoch and not recovered:
            recovered = True
            victim = ShardRunner(
                network, plan, kill_shard, factory(), dt=dt, seed=seed
            )
            if snapshots is not None:
                victim.restore(snapshots[kill_shard])
            for past in range(snapshot_epoch + 1, epoch):
                past_length = plan.window_length(past, n_steps)
                window = victim.run_window(past_length)
                if window_digest(window) != contrib_digests[past][kill_shard]:
                    raise ShardingError(
                        f"shard {kill_shard} re-produced a different "
                        f"window for epoch {past} after restart — "
                        "determinism violation"
                    )
                victim.apply_exchange(exchange_cache[past], past_length)
            runners[kill_shard] = victim
        windows = [runner.run_window(length) for runner in runners]
        merged = merge_windows(plan, windows, length)
        exchange_cache[epoch] = merged
        contrib_digests[epoch] = [window_digest(w) for w in windows]
        for runner in runners:
            runner.apply_exchange(merged, length)
        if (
            checkpoint_every
            and (epoch + 1) % checkpoint_every == 0
            and epoch + 1 < n_epochs
        ):
            snapshots = [runner.snapshot() for runner in runners]
            snapshot_epoch = epoch
            for old in [e for e in exchange_cache if e <= epoch]:
                del exchange_cache[old]
                del contrib_digests[old]
        if on_epoch is not None:
            on_epoch(epoch, n_epochs, (epoch * plan.window) + length)

    spikes = merge_spikes([runner.recorder.snapshot() for runner in runners])
    return InlineShardResult(
        spikes=spikes,
        n_steps=n_steps,
        n_shards=n_shards,
        window=plan.window,
        epochs=n_epochs,
        recovered=recovered,
    )
