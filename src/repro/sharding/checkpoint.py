"""Composite checkpoints: N shard snapshots composed into one artifact.

At a barrier epoch every shard's state is, by construction, a pure
function of (network, plan, backend, seed, steps so far) — the barrier
is the only point where cross-shard information flows, so the instant
all shards have acknowledged epoch ``e`` their individual snapshots
form one globally consistent cut. The coordinator composes them into a
:class:`CompositeCheckpoint` and persists it through the same
crash-safe :func:`repro.io.atomic_writer` discipline as single-process
checkpoints: a SIGKILL mid-save leaves the previous artifact, never a
truncated one.

The ``signature`` block pins everything that must match for a resume
to be meaningful — the plan identity (network name, population sizes,
shard count, barrier window) plus the run parameters (backend, dt,
steps, workload, scale, seed). ``load`` raises the same structured
:class:`~repro.errors.CheckpointError` taxonomy as
:meth:`repro.reliability.checkpoint.Checkpoint.load` (``not-found``,
``truncated``, ``not-a-pickle``, ``corrupt``, ``wrong-type``,
``io-error``), so callers can tell a missing artifact from a damaged
one without parsing message strings.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import CheckpointError
from repro.io import atomic_writer

__all__ = ["COMPOSITE_VERSION", "CompositeCheckpoint"]

#: Bumped when the composite payload layout changes.
COMPOSITE_VERSION = 1


@dataclass
class CompositeCheckpoint:
    """One resumable artifact covering every shard at one barrier epoch."""

    #: Plan + run identity (see module docstring); a resume must match.
    signature: Dict[str, object]
    #: Last fully acknowledged barrier epoch.
    epoch: int
    #: Global step count at that barrier (``(epoch + 1) * window``,
    #: clamped to the run length).
    step: int
    #: ``{shard_id: ShardRunner.snapshot() payload}`` for every shard.
    shards: Dict[int, dict] = field(default_factory=dict)
    version: int = COMPOSITE_VERSION

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "signature": dict(self.signature),
            "epoch": self.epoch,
            "step": self.step,
            "shards": dict(self.shards),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompositeCheckpoint":
        if payload.get("version") != COMPOSITE_VERSION:
            raise CheckpointError(
                f"composite checkpoint version {payload.get('version')!r} "
                f"not supported (expected {COMPOSITE_VERSION})",
                reason="corrupt",
            )
        return cls(
            signature=dict(payload["signature"]),
            epoch=int(payload["epoch"]),
            step=int(payload["step"]),
            shards={int(k): v for k, v in payload["shards"].items()},
        )

    def save(self, path) -> None:
        """Atomically persist (crash leaves the previous artifact)."""
        try:
            with atomic_writer(path, "wb") as handle:
                pickle.dump(
                    self.to_payload(), handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
        except OSError as error:
            raise CheckpointError(
                f"cannot write composite checkpoint {path}: {error}",
                path=str(path), reason="io-error",
            ) from error

    @classmethod
    def load(cls, path) -> "CompositeCheckpoint":
        """Load and validate, raising structured :class:`CheckpointError`."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"no composite checkpoint at {path}",
                path=str(path), reason="not-found",
            ) from None
        except EOFError as error:
            raise CheckpointError(
                f"composite checkpoint {path} is truncated "
                "(the run was killed mid-write before atomic rename?)",
                path=str(path), reason="truncated",
            ) from error
        except pickle.UnpicklingError as error:
            raise CheckpointError(
                f"composite checkpoint {path} is not a pickle: {error}",
                path=str(path), reason="not-a-pickle",
            ) from error
        except OSError as error:
            raise CheckpointError(
                f"cannot read composite checkpoint {path}: {error}",
                path=str(path), reason="io-error",
            ) from error
        except (AttributeError, ImportError, IndexError, KeyError,
                TypeError, ValueError) as error:
            raise CheckpointError(
                f"composite checkpoint {path} is corrupt "
                f"({type(error).__name__}: {error})",
                path=str(path), reason="corrupt",
            ) from error
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"composite checkpoint {path} holds a "
                f"{type(payload).__name__}, not a checkpoint payload",
                path=str(path), reason="wrong-type",
            )
        try:
            return cls.from_payload(payload)
        except CheckpointError as error:
            raise CheckpointError(
                str(error), path=str(path),
                reason=error.reason or "corrupt",
            ) from None
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"composite checkpoint {path} is corrupt "
                f"({type(error).__name__}: {error})",
                path=str(path), reason="corrupt",
            ) from error

    def matches(self, signature: Dict[str, object]) -> bool:
        """Does this artifact belong to the given plan/run identity?"""
        return self.signature == signature
