"""ShardCoordinator: one network across crash-recoverable workers.

The coordinator is the sharding layer's supervisor: it spawns one
:func:`~repro.sharding.worker.shard_worker_entry` process per shard,
drives the min-delay window barrier over their pipes, and owns the
whole recovery ladder:

* **Barrier** — an epoch completes when every shard's ``window``
  message has arrived; the coordinator merges the fired lists (shard
  order, so concatenation reproduces the single-process ascending
  order), caches the merge, and broadcasts one ``exchange`` to every
  shard. The wait between the first and last arrival is observed into
  the ``shard_barrier_wait_seconds`` histogram.

* **Composite checkpoints** — every ``checkpoint_every`` epochs each
  shard ships its snapshot; once all have arrived they form a globally
  consistent cut (:class:`~repro.sharding.checkpoint.
  CompositeCheckpoint`), optionally persisted atomically, and the
  exchange cache up to that epoch is pruned.

* **Kill-and-restart** — a dead or stalled shard (no traffic for
  ``barrier_timeout``; detected per-shard, so one lagging shard never
  stalls the whole run silently) is SIGKILLed and respawned from the
  last composite cut. The restarted shard deterministically re-runs
  the windows since that cut; the coordinator verifies each re-sent
  window digest against the cached original — a mismatch means the
  checkpoint or the backend lied, and the run degrades rather than
  split reality. Surviving shards never rewind: the coordinator
  re-serves the cached exchanges, which is the outbox rewind.

* **Graceful degradation** — when a shard exhausts its
  :class:`~repro.supervision.backoff.RetryPolicy` budget (or a
  determinism violation is detected), the coordinator kills every
  worker and re-runs the whole job single-process — bit-identical by
  construction — recording a structured :class:`~repro.reliability.
  diagnostics.DegradedEvent` in the run diagnostics.

Metrics (``shard_barrier_wait_seconds``, ``shard_restarts_total``,
``shard_epoch``), the :class:`~repro.observability.server.StatusBoard`
rows, and :class:`~repro.observability.server.EventBus` events ride
the same observability plane as the supervisor, so ``repro run
--shards N --serve`` streams barrier progress live.
"""

from __future__ import annotations

import os
import signal as _signal
import tempfile
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Dict, List, Optional

from repro.errors import ShardingError, SupervisionError
from repro.observability.log import new_run_id
from repro.provenance import (
    ProcessRing,
    SpanRecorder,
    TraceContext,
    barrier_recv_id,
    barrier_send_id,
    estimate_offset,
    merge_rings,
)
from repro.reliability.diagnostics import DegradedEvent, RunDiagnostics
from repro.sharding.checkpoint import CompositeCheckpoint
from repro.sharding.plan import ShardPlan
from repro.sharding.runner import Window, merge_spikes, merge_windows
from repro.sharding.worker import shard_worker_entry
from repro.supervision.backoff import RetryPolicy
from repro.supervision.config import SupervisorConfig
from repro.supervision.job import JobSpec, spike_digest

__all__ = ["ShardChaos", "ShardCoordinator", "ShardedRunResult"]

#: Barrier-wait histogram buckets (same shape as the supervisor's lag
#: buckets: 10 ms .. 30 s).
_BARRIER_BUCKETS = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


@dataclass(frozen=True)
class ShardChaos:
    """Fault injection for the sharded chaos tests and the CI smoke.

    ``kill_epoch`` makes the target shard SIGKILL itself right after
    computing that epoch's window (before sending it); ``stall_epoch``
    makes it hang silently at the same point. Both apply only on
    ``attempt``, so the restarted worker succeeds.
    """

    shard: int = 0
    kill_epoch: Optional[int] = None
    stall_epoch: Optional[int] = None
    attempt: int = 0

    def payload(self) -> dict:
        return {
            "kill_epoch": self.kill_epoch,
            "stall_epoch": self.stall_epoch,
            "attempt": self.attempt,
        }


@dataclass
class ShardedRunResult:
    """What one coordinated sharded run produced."""

    spikes: object  #: merged :class:`SpikeRecorder`
    n_steps: int
    dt: float
    n_shards: int
    window: int
    epochs: int
    #: Restarts per shard (index = shard id).
    restarts: List[int] = field(default_factory=list)
    #: True when the run fell back to single-process execution.
    degraded: bool = False
    diagnostics: RunDiagnostics = field(default_factory=RunDiagnostics)
    spike_digest: str = ""
    wall_seconds: float = 0.0
    #: Barrier epochs whose exchange was re-served to a restarted shard.
    replayed_epochs: int = 0
    #: Provenance correlation id shared by every worker incarnation.
    run_id: str = ""
    #: Span rings from the coordinator and every worker incarnation.
    rings: List[ProcessRing] = field(default_factory=list)

    def total_spikes(self) -> int:
        return self.spikes.total_spikes()

    def trace_document(self, network: Optional[str] = None) -> dict:
        """The merged Chrome/Perfetto trace of this run (see merge)."""
        return merge_rings(self.rings, run_id=self.run_id, network=network)

    def trace_json(self, network: Optional[str] = None) -> str:
        import json

        return json.dumps(self.trace_document(network), indent=2)

    def to_stats_dict(self) -> dict:
        return {
            "schema": "repro-shard-run/1",
            "run_id": self.run_id,
            "n_steps": self.n_steps,
            "dt": self.dt,
            "n_shards": self.n_shards,
            "window": self.window,
            "epochs": self.epochs,
            "restarts": list(self.restarts),
            "total_restarts": sum(self.restarts),
            "replayed_epochs": self.replayed_epochs,
            "degraded": self.degraded,
            "total_spikes": self.total_spikes(),
            "spike_digest": self.spike_digest,
            "wall_seconds": self.wall_seconds,
            "diagnostics": self.diagnostics.to_dict(),
        }


class _ShardHandle:
    """One live shard worker: process, pipe, and liveness bookkeeping."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.process = None
        self.conn = None
        self.attempt = -1
        self.last_signal = time.monotonic()
        self.capture_path = ""
        # Provenance bookkeeping, reset on every (re)spawn: the span
        # sidecar path, (worker_ts, parent_ts) handshake samples for
        # clock-offset estimation, and whether this incarnation's ring
        # has already been collected (pipe beats sidecar).
        self.spans_path = ""
        self.offset_samples: List[tuple] = []
        self.ring_collected = False

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def kill(self) -> None:
        if self.process is not None:
            self.process.kill()
            self.process.join(timeout=10.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.kill()
                self.process.join(timeout=10.0)
        if self.conn is not None:
            self.conn.close()
            self.conn = None


class ShardCoordinator:
    """Drives one sharded simulation to completion, whatever dies.

    Parameters
    ----------
    spec:
        The job to run (workload, backend, steps, scale, seed, dt).
        ``spec.shards`` names the partition count.
    config:
        :class:`SupervisorConfig` watchdog timings (poll cadence and
        the workers' heartbeat interval are used here).
    retry:
        Per-shard restart budget; defaults to 2 restarts, 0.5 s base.
    barrier_timeout:
        Seconds without *any* traffic from a shard before it is
        declared stalled and killed. This is the sharded analogue of
        the supervisor's heartbeat timeout.
    checkpoint_every:
        Composite-checkpoint interval in barrier *epochs* (>= 1).
    checkpoint_path:
        Optional file path; when set, every composite checkpoint is
        atomically persisted there.
    chaos:
        Optional :class:`ShardChaos` fault injection.
    metrics / status_board / event_bus:
        The observability plane (all optional; a private
        ``MetricsRegistry`` is created when omitted).
    health:
        Optional :class:`~repro.health.alerts.HealthMonitor`. The
        coordinator feeds it every shard's barrier lateness and
        heartbeat resource sample, and ticks its alert evaluation from
        the barrier loop.
    """

    def __init__(
        self,
        spec: JobSpec,
        *,
        config: Optional[SupervisorConfig] = None,
        retry: Optional[RetryPolicy] = None,
        barrier_timeout: float = 30.0,
        checkpoint_every: int = 1,
        checkpoint_path: Optional[str] = None,
        chaos: Optional[ShardChaos] = None,
        metrics=None,
        status_board=None,
        event_bus=None,
        run_id: Optional[str] = None,
        health=None,
    ) -> None:
        if spec.shards < 2:
            raise SupervisionError(
                f"ShardCoordinator needs spec.shards >= 2, got {spec.shards}"
            )
        if barrier_timeout <= 0:
            raise SupervisionError(
                f"barrier_timeout must be positive, got {barrier_timeout}"
            )
        if checkpoint_every < 1:
            raise SupervisionError(
                f"checkpoint_every must be >= 1 epoch, got {checkpoint_every}"
            )
        if chaos is not None and not 0 <= chaos.shard < spec.shards:
            raise SupervisionError(
                f"chaos shard {chaos.shard} out of range 0..{spec.shards - 1}"
            )
        if metrics is None:
            from repro.telemetry import MetricsRegistry

            metrics = MetricsRegistry()
        self.spec = spec
        self.config = config if config is not None else SupervisorConfig()
        self.retry = retry if retry is not None else RetryPolicy()
        self.barrier_timeout = barrier_timeout
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.chaos = chaos
        self.metrics = metrics
        self.status_board = status_board
        self.event_bus = event_bus
        self.health = health
        self._ctx = get_context("spawn")
        self._sleep = time.sleep
        self.diagnostics = RunDiagnostics()
        self.restarts = [0] * spec.shards
        self._replayed_epochs = 0
        self.run_id = run_id or new_run_id()
        # The coordinator's own span ring (offset 0 — it *is* the
        # reference clock) plus the rings harvested from every worker
        # incarnation. 4096 barrier spans cover hours of epochs.
        self._spans = SpanRecorder(
            TraceContext(run_id=self.run_id), max_spans=4096
        )
        self._rings: List[ProcessRing] = []

        network, plan = self._derive_plan()
        self._network = network
        self.plan = plan
        self.n_epochs = plan.epochs_for(spec.steps)

        # Barrier state. ``pending[epoch][shard]`` holds window
        # payloads not yet merged; ``cache[epoch]`` merged exchanges
        # retained since the last composite cut (the outbox a restarted
        # shard replays against); ``digests[epoch][shard]`` the window
        # digests used to verify a restarted shard's re-sent history.
        self._pending: Dict[int, Dict[int, dict]] = {}
        self._cache: Dict[int, Window] = {}
        self._digests: Dict[int, Dict[int, str]] = {}
        self._ckpt_parts: Dict[int, Dict[int, dict]] = {}
        self._shard_states: Dict[int, dict] = {}
        self._last_composite_epoch = -1
        self._epoch_released = -1  # newest epoch whose exchange was sent
        self._barrier_opened: Dict[int, float] = {}
        self._barrier_opened_wall: Dict[int, float] = {}
        self._done: Dict[int, dict] = {}
        self._handles: List[_ShardHandle] = []
        self._capture_dir = ""

    # -- plan derivation ---------------------------------------------------

    def _derive_plan(self):
        from repro.workloads import build_workload

        network = build_workload(
            self.spec.workload, scale=self.spec.scale, seed=self.spec.seed
        )
        return network, ShardPlan(network, self.spec.shards)

    # -- observability helpers ---------------------------------------------

    def _publish_event(self, event_type: str, payload: dict) -> None:
        if self.event_bus is not None:
            self.event_bus.publish(event_type, dict(payload))

    def _shard_row(self, shard: int, **fields) -> None:
        if self.status_board is not None:
            self.status_board.merge("shards", **{f"shard{shard}": fields})

    def _observe_barrier_wait(self, seconds: float) -> None:
        self.metrics.histogram(
            "shard_barrier_wait_seconds",
            "Wait between the first and last shard reaching a barrier.",
            buckets=_BARRIER_BUCKETS,
        ).observe(seconds)

    def _inc_restarts(self, shard: int, reason: str) -> None:
        self.restarts[shard] += 1
        self.metrics.counter(
            "shard_restarts_total",
            "Shard workers killed and restarted by the coordinator.",
            {"shard": str(shard), "reason": reason},
        ).inc()

    def _set_epoch_gauge(self, epoch: int) -> None:
        self.metrics.gauge(
            "shard_epoch",
            "Newest barrier epoch whose exchange has been released.",
        ).set(epoch)

    def _shard_resources(self, shard: int, body: dict) -> dict:
        """Resource fields riding a heartbeat → gauges, health, status.

        Gauges (not counters): a restarted shard's CPU clock starts at
        zero again. Heartbeats without the fields contribute nothing.
        """
        out = {}
        rss = body.get("rss_bytes")
        cpu = body.get("cpu_seconds")
        if rss is not None:
            out["rss_bytes"] = float(rss)
            self.metrics.gauge(
                "shard_resident_memory_bytes",
                "Resident set size reported by the shard's latest "
                "heartbeat.",
                {"shard": str(shard)},
            ).set(float(rss))
        if cpu is not None:
            out["cpu_seconds"] = float(cpu)
            self.metrics.gauge(
                "shard_cpu_seconds",
                "CPU time consumed by the shard's current incarnation.",
                {"shard": str(shard)},
            ).set(float(cpu))
        if self.health is not None and out:
            self.health.resource_sample(shard, out)
        return out

    # -- provenance ---------------------------------------------------------

    def _collect_ring(self, handle: _ShardHandle,
                      dump: Optional[dict]) -> None:
        """Adopt one incarnation's span ring (pipe payload or sidecar)."""
        if handle.ring_collected or not dump:
            return
        ring = ProcessRing.from_dump(
            dump,
            label=f"shard{handle.shard}#a{handle.attempt}",
            offset=estimate_offset(handle.offset_samples),
        )
        self._rings.append(ring)
        handle.ring_collected = True

    def _harvest_sidecar(self, handle: _ShardHandle) -> None:
        """Sidecar exit path: a SIGKILL'd worker never sent its ring."""
        if handle.ring_collected or not handle.spans_path:
            return
        self._collect_ring(handle, SpanRecorder.load_dump(handle.spans_path))

    def _all_rings(self) -> List[ProcessRing]:
        """Coordinator ring first, then every worker incarnation."""
        own = ProcessRing(
            label="coordinator",
            pid=os.getpid(),
            offset=0.0,
            spans=list(self._spans.spans),
            dropped=self._spans.dropped_spans,
        )
        return [own] + list(self._rings)

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self, handle: _ShardHandle, capture_dir: str) -> None:
        handle.attempt += 1
        shard = handle.shard
        resume = self._shard_states.get(shard)
        start_epoch = (
            self._last_composite_epoch + 1 if resume is not None else 0
        )
        handle.capture_path = os.path.join(
            capture_dir, f"shard{shard}.a{handle.attempt}.out"
        )
        handle.spans_path = os.path.join(
            capture_dir, f"shard{shard}.a{handle.attempt}.spans.json"
        )
        handle.offset_samples = []
        handle.ring_collected = False
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_entry,
            args=(child_conn, handle.capture_path),
            daemon=True,
        )
        process.start()
        child_conn.close()
        payload = {
            "spec": self.spec.to_payload(),
            "plan": self.plan.to_payload(),
            "shard": shard,
            "attempt": handle.attempt,
            "resume": resume,
            "start_epoch": start_epoch,
            "heartbeat_interval": self.config.heartbeat_interval,
            "checkpoint_every": self.checkpoint_every,
            "trace": TraceContext(
                run_id=self.run_id, shard_id=shard,
                attempt=handle.attempt,
                parent_span=f"barrier:{self.run_id}",
            ).to_payload(),
            "spans_path": handle.spans_path,
            "chaos": (
                self.chaos.payload()
                if self.chaos is not None and self.chaos.shard == shard
                else None
            ),
        }
        parent_conn.send(payload)
        handle.process = process
        handle.conn = parent_conn
        handle.last_signal = time.monotonic()
        self._shard_row(
            shard, state="starting", attempt=handle.attempt,
            start_epoch=start_epoch, restarts=self.restarts[shard],
        )
        self._publish_event(
            "shard-start",
            {"shard": shard, "attempt": handle.attempt,
             "start_epoch": start_epoch},
        )

    def _restart(self, handle: _ShardHandle, reason: str) -> None:
        """Kill a shard and bring it back from the last composite cut."""
        shard = handle.shard
        if handle.attempt >= self.retry.max_retries:
            raise _DegradeRun(
                reason="retries-exhausted", shard=shard,
                attempts=handle.attempt + 1,
                detail=f"shard {shard} failed again ({reason}) after "
                       f"{handle.attempt + 1} attempt(s)",
            )
        handle.kill()
        self._harvest_sidecar(handle)
        self._inc_restarts(shard, reason)
        # Windows the dead shard contributed to un-released epochs are
        # void — the restarted worker re-produces them.
        for epoch, parts in self._pending.items():
            if epoch > self._epoch_released:
                parts.pop(shard, None)
        for epoch, parts in self._ckpt_parts.items():
            parts.pop(shard, None)
        self._shard_row(
            shard, state="restarting", reason=reason,
            restarts=self.restarts[shard],
        )
        self._publish_event(
            "shard-restart", {"shard": shard, "reason": reason,
                              "restarts": self.restarts[shard]},
        )
        self._sleep(self.retry.delay(handle.attempt, None))
        self._spawn(handle, self._capture_dir)

    # -- the run -----------------------------------------------------------

    def run(self) -> ShardedRunResult:
        """Drive every shard to ``spec.steps``; degrade rather than raise
        for shard failures (configuration errors still raise)."""
        start = time.monotonic()
        handles = [_ShardHandle(s) for s in range(self.spec.shards)]
        self._handles = handles
        if self.status_board is not None:
            self.status_board.update(
                state="running",
                sharded=f"{self.spec.shards} shard(s), "
                        f"window {self.plan.window}",
            )
        self._publish_event(
            "shard-run-start",
            {"n_shards": self.spec.shards, "window": self.plan.window,
             "epochs": self.n_epochs},
        )
        try:
            with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                self._capture_dir = tmp
                for handle in handles:
                    self._spawn(handle, tmp)
                try:
                    self._barrier_loop(handles)
                finally:
                    for handle in handles:
                        handle.kill()
                        # Rings not shipped over the pipe (degradation,
                        # teardown) are recovered from sidecars before
                        # the capture dir vanishes with this block.
                        self._harvest_sidecar(handle)
        except _DegradeRun as degrade:
            return self._degrade(degrade, start)
        spikes = merge_spikes(
            [self._done[s]["spikes"] for s in range(self.spec.shards)]
        )
        result = ShardedRunResult(
            spikes=spikes,
            n_steps=self.spec.steps,
            dt=self.spec.dt,
            n_shards=self.spec.shards,
            window=self.plan.window,
            epochs=self.n_epochs,
            restarts=list(self.restarts),
            degraded=False,
            diagnostics=self.diagnostics,
            spike_digest=spike_digest(spikes),
            wall_seconds=time.monotonic() - start,
            replayed_epochs=self._replayed_epochs,
            run_id=self.run_id,
            rings=self._all_rings(),
        )
        if self.status_board is not None:
            self.status_board.update(state="finished")
        self._publish_event(
            "shard-run-end",
            {"degraded": False, "restarts": sum(self.restarts),
             "total_spikes": result.total_spikes()},
        )
        return result

    def _barrier_loop(self, handles: List[_ShardHandle]) -> None:
        poll = self.config.poll_interval
        while len(self._done) < self.spec.shards:
            conns = [h.conn for h in handles if h.conn is not None
                     and h.shard not in self._done]
            ready = _conn_wait(conns, timeout=poll) if conns else []
            by_conn = {h.conn: h for h in handles}
            for conn in ready:
                handle = by_conn[conn]
                try:
                    kind, body = conn.recv()
                except (EOFError, OSError):
                    # Pipe died — treat like a silent crash; the
                    # liveness sweep below will classify and restart.
                    continue
                handle.last_signal = time.monotonic()
                self._handle_message(handle, kind, body)
            if self.health is not None:
                self.health.tick()
            now = time.monotonic()
            for handle in handles:
                if handle.shard in self._done:
                    continue
                if not handle.alive():
                    exitcode = (
                        handle.process.exitcode
                        if handle.process is not None else None
                    )
                    self._drain(handle)
                    if handle.shard in self._done:
                        continue
                    reason = (
                        "oom-like"
                        if exitcode == -int(_signal.SIGKILL)
                        else "crash"
                    )
                    self._restart(handle, reason)
                elif (
                    now - handle.last_signal > self.barrier_timeout
                    and not self._waiting_at_barrier(handle.shard)
                ):
                    self._restart(handle, "stall")

    def _waiting_at_barrier(self, shard: int) -> bool:
        """Has this shard already delivered its window and gone quiet?

        A shard blocked in ``recv()`` waiting for an exchange emits no
        heartbeats — that silence is the barrier working, not a stall.
        Stall detection must target only the shards whose window is
        *missing*, otherwise restarting one laggard would cascade into
        killing every waiter.
        """
        return any(
            shard in parts
            for epoch, parts in self._pending.items()
            if epoch > self._epoch_released
        )

    def _drain(self, handle: _ShardHandle) -> None:
        """Pick up final messages that raced a worker's exit."""
        if handle.conn is None:
            return
        while True:
            try:
                if not handle.conn.poll(0):
                    return
                kind, body = handle.conn.recv()
            except (EOFError, OSError):
                return
            handle.last_signal = time.monotonic()
            self._handle_message(handle, kind, body)

    # -- message handling --------------------------------------------------

    def _handle_message(self, handle: _ShardHandle, kind: str,
                        body: dict) -> None:
        shard = handle.shard
        if isinstance(body, dict) and body.get("ts") is not None:
            # Every stamped inbound message is a clock-offset sample
            # (worker wall-clock send time vs our wall-clock receive).
            handle.offset_samples.append((float(body["ts"]), time.time()))
        if kind == "heartbeat":
            resources = self._shard_resources(shard, body)
            self._shard_row(
                shard, state="running", step=body.get("step"),
                restarts=self.restarts[shard], **resources,
            )
            return
        if kind == "started":
            self._shard_row(
                shard, state="running", step=body.get("step"),
                restarts=self.restarts[shard],
            )
            return
        if kind == "window":
            self._on_window(handle, body)
            return
        if kind == "checkpoint":
            self._on_checkpoint(shard, body)
            return
        if kind == "done":
            self._done[shard] = body
            self._collect_ring(handle, body.get("spans"))
            self._shard_row(
                shard, state="done", step=body.get("steps"),
                restarts=self.restarts[shard],
            )
            self._publish_event(
                "shard-done",
                {"shard": shard, "steps": body.get("steps"),
                 "total_spikes": body.get("total_spikes")},
            )
            return
        if kind == "failed":
            raise_reason = body.get("kind", "crash")
            self._collect_ring(handle, body.get("spans"))
            self._shard_row(shard, state="failed", error=body.get("error"))
            self._restart(handle, raise_reason)
            return
        # Unknown message kinds indicate a wire-protocol break.
        raise ShardingError(
            f"shard {shard} sent unknown message kind {kind!r}"
        )

    def _on_window(self, handle: _ShardHandle, body: dict) -> None:
        shard = handle.shard
        epoch = int(body["epoch"])
        if epoch <= self._epoch_released:
            # A restarted shard replaying history: verify it re-produced
            # byte-identical windows, then re-serve the cached exchange.
            cached_digest = self._digests.get(epoch, {}).get(shard)
            if cached_digest is None:
                raise _DegradeRun(
                    reason="replay-cache-miss", shard=shard,
                    attempts=handle.attempt + 1,
                    detail=f"shard {shard} replayed epoch {epoch} but its "
                           "exchange was already pruned",
                )
            if body["digest"] != cached_digest:
                raise _DegradeRun(
                    reason="determinism-violation", shard=shard,
                    attempts=handle.attempt + 1,
                    detail=f"shard {shard} re-produced a different window "
                           f"for epoch {epoch} after restart",
                )
            self._replayed_epochs += 1
            handle.conn.send(
                ("exchange", {"epoch": epoch, "fired": self._cache[epoch]})
            )
            return
        now = time.monotonic()
        parts = self._pending.setdefault(epoch, {})
        if not parts:
            self._barrier_opened[epoch] = now
            self._barrier_opened_wall[epoch] = time.time()
        parts[shard] = body
        if self.health is not None:
            # This shard's lateness behind the epoch's first arrival —
            # the per-shard signal the straggler detector compares
            # against its peers (the barrier histogram only keeps the
            # first-to-last aggregate).
            self.health.barrier_wait(
                shard, now - self._barrier_opened[epoch]
            )
        self._shard_row(
            shard, state="at-barrier", epoch=epoch, step=body.get("step"),
            restarts=self.restarts[shard],
        )
        if len(parts) == self.spec.shards:
            self._release_epoch(epoch)

    def _release_epoch(self, epoch: int) -> None:
        """All shards reached ``epoch``: merge, cache, broadcast."""
        parts = self._pending.pop(epoch)
        opened = self._barrier_opened.pop(epoch, time.monotonic())
        wait = time.monotonic() - opened
        self._observe_barrier_wait(wait)
        # The same observation, as an explicit span on the coordinator
        # track: first window arrival → release. Flow markers tie it to
        # every shard's send span (in) and receive span (out), which is
        # what makes a barrier stall visually attributable in Perfetto.
        n_shards = self.spec.shards
        self._spans.record(
            f"barrier e{epoch}",
            "barrier",
            self._barrier_opened_wall.pop(epoch, time.time() - wait),
            wait,
            args={"epoch": epoch, "wait_seconds": round(wait, 6)},
            flow_in=[barrier_send_id(epoch, s, n_shards)
                     for s in range(n_shards)],
            flow_out=[barrier_recv_id(epoch, s, n_shards)
                      for s in range(n_shards)],
        )
        # Releasing the barrier is a liveness event for every shard: a
        # waiter's last message may be arbitrarily old (it sent its
        # window, then blocked in recv), and without this reset the
        # stall sweep would race the post-release traffic and restart
        # healthy shards.
        now = time.monotonic()
        for handle in self._handles:
            handle.last_signal = now
        length = self.plan.window_length(epoch, self.spec.steps)
        windows = [parts[s]["fired"] for s in range(self.spec.shards)]
        merged = merge_windows(self.plan, windows, length)
        self._cache[epoch] = merged
        self._digests[epoch] = {
            s: parts[s]["digest"] for s in range(self.spec.shards)
        }
        self._epoch_released = epoch
        self._set_epoch_gauge(epoch)
        self._publish_event(
            "shard-barrier",
            {"epoch": epoch, "step": (epoch * self.plan.window) + length},
        )
        for handle in self._handles:
            if handle.shard in self._done or handle.conn is None:
                continue
            try:
                handle.conn.send(("exchange", {"epoch": epoch,
                                               "fired": merged}))
            except (BrokenPipeError, OSError):
                # Dead worker; the liveness sweep restarts it and the
                # replay path re-serves this exchange from the cache.
                pass

    def _on_checkpoint(self, shard: int, body: dict) -> None:
        epoch = int(body["epoch"])
        if epoch <= self._last_composite_epoch:
            # A replaying shard re-announced an already-composited cut.
            return
        parts = self._ckpt_parts.setdefault(epoch, {})
        parts[shard] = body["state"]
        if len(parts) < self.spec.shards:
            return
        # A globally consistent cut: all shards snapshotted epoch.
        states = self._ckpt_parts.pop(epoch)
        self._shard_states = states
        self._last_composite_epoch = epoch
        step = min(
            (epoch + 1) * self.plan.window, self.spec.steps
        )
        if self.checkpoint_path:
            composite = CompositeCheckpoint(
                signature=self._signature(), epoch=epoch, step=step,
                shards=states,
            )
            composite.save(self.checkpoint_path)
        # Exchanges at or before the cut can never be replayed again.
        for old in [e for e in self._cache if e <= epoch]:
            del self._cache[old]
            del self._digests[old]
        self._publish_event(
            "shard-checkpoint", {"epoch": epoch, "step": step}
        )

    def _signature(self) -> dict:
        signature = dict(self.plan.signature())
        signature.update(
            backend=self.spec.backend,
            dt=self.spec.dt,
            steps=self.spec.steps,
            workload=self.spec.workload,
            scale=self.spec.scale,
            seed=self.spec.seed,
        )
        return signature

    # -- degradation -------------------------------------------------------

    def _degrade(self, degrade: "_DegradeRun",
                 start: float) -> ShardedRunResult:
        """Last rung of the ladder: single-process rerun from step 0.

        Deterministic seeding makes the rerun bit-identical to what the
        sharded run would have produced, so callers still get a correct
        result — just without the parallelism.
        """
        from repro.supervision.worker import _build_simulator

        event = DegradedEvent(
            reason=degrade.reason,
            shard=degrade.shard,
            epoch=self._epoch_released + 1,
            attempts=degrade.attempts,
            detail=degrade.detail,
        )
        self.diagnostics.degraded.append(event)
        if self.health is not None:
            self.health.event_total(
                "degraded", len(self.diagnostics.degraded)
            )
            self.health.tick(force=True)
        self._publish_event(
            "shard-degraded",
            {"reason": degrade.reason, "shard": degrade.shard,
             "attempts": degrade.attempts},
        )
        if self.status_board is not None:
            self.status_board.update(state="degraded")
        simulator, _network = _build_simulator(self.spec)
        result = simulator.run(self.spec.steps)
        return ShardedRunResult(
            spikes=result.spikes,
            n_steps=self.spec.steps,
            dt=self.spec.dt,
            n_shards=self.spec.shards,
            window=self.plan.window,
            epochs=self.n_epochs,
            restarts=list(self.restarts),
            degraded=True,
            diagnostics=self.diagnostics,
            spike_digest=spike_digest(result.spikes),
            wall_seconds=time.monotonic() - start,
            replayed_epochs=self._replayed_epochs,
            run_id=self.run_id,
            rings=self._all_rings(),
        )


class _DegradeRun(Exception):
    """Internal control flow: abandon sharding, go single-process."""

    def __init__(self, reason: str, shard: int, attempts: int,
                 detail: str) -> None:
        super().__init__(detail)
        self.reason = reason
        self.shard = shard
        self.attempts = attempts
        self.detail = detail
