"""The shard worker: one shard's windowed loop in one spawned process.

:func:`shard_worker_entry` is the ``multiprocessing`` target for one
shard of a :class:`~repro.sharding.coordinator.ShardCoordinator` run.
Like the supervised job worker it is spawn-safe: the process receives
nothing but a pipe connection (plus the capture path for stdout/stderr
redirection), and the first message carries everything else. Wire
protocol, worker → coordinator:

``("started", {...})``
    Sent once the runner is built (and a resume snapshot restored),
    with the step the shard will continue from.
``("heartbeat", {"step": ..., "phase": ..., "rss_bytes": ...,
"cpu_seconds": ...})``
    Throttled progress signal, emitted from inside long windows via
    :meth:`ShardRunner.run_window`'s ``on_step`` seam — the
    coordinator's stall detector feeds on any inbound traffic, so a
    shard grinding through a big window is never mistaken for hung.
    Each heartbeat carries a :mod:`repro.health.resources` sample, so
    the coordinator exposes per-shard RSS/CPU and the straggler
    detector can attribute barrier skew.
``("window", {"epoch": ..., "fired": ..., "digest": ..., "step": ...})``
    The shard's window payload for one barrier epoch: per-population
    per-step global fired indices plus its SHA-256 digest (the
    coordinator uses the digest to verify a restarted shard re-produces
    byte-identical history).
``("checkpoint", {"epoch": ..., "state": ...})``
    The shard's full snapshot at a composite-checkpoint barrier.
``("done", {...})``
    Final step count and the shard's recorder snapshot for the merge.
``("failed", {...})``
    A structured failure the worker caught itself.

Coordinator → worker, after each ``window``:

``("exchange", {"epoch": ..., "fired": ...})``
    The merged fired lists of all shards for that epoch — replayed
    through the shard's sub-projections by
    :meth:`ShardRunner.apply_exchange`.
``("stop", {})``
    Orderly shutdown (degradation or coordinator teardown).

The ``chaos`` block of the init payload makes the worker sabotage
itself at a chosen barrier epoch — SIGKILL right after computing a
window (so the coordinator must restart it and replay history), or a
silent stall before sending (so the barrier timeout must fire). Both
apply only on the configured attempt so the restarted worker succeeds.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import Optional

from repro.supervision.job import JobSpec
from repro.supervision.worker import (
    HEARTBEAT_INTERVAL,
    _build_backend,
    _redirect_output,
)

__all__ = ["shard_worker_entry"]


class _ShardHeartbeat:
    """Throttled heartbeat sender (pipe-tolerant, wall-clock gated)."""

    def __init__(self, conn, interval: float = HEARTBEAT_INTERVAL) -> None:
        from repro.health.resources import ResourceSampler

        self.conn = conn
        self.interval = interval
        self._resources = ResourceSampler()
        self._last = time.monotonic()
        self._broken = False

    def beat(self, step: int, phase: str = "window") -> None:
        now = time.monotonic()
        if now - self._last < self.interval:
            return
        self._last = now
        if self._broken:
            return
        sample = self._resources.sample()
        try:
            self.conn.send(
                ("heartbeat",
                 {"step": step, "phase": phase, "ts": time.time(),
                  "rss_bytes": sample["rss_bytes"],
                  "cpu_seconds": sample["cpu_seconds"]})
            )
        except (BrokenPipeError, OSError):
            self._broken = True


def _build_runner(spec: JobSpec, plan_payload: dict, shard: int):
    """Network + plan + backend + runner for one shard (deterministic).

    Seeding follows the repo convention: network with ``spec.seed``,
    runner (stimulus RNG) with ``spec.seed + 1`` — every shard holds an
    identical RNG stream, which is what keeps full-size stimulus draws
    in lockstep with the single-process simulator.
    """
    from repro.sharding.plan import ShardPlan
    from repro.sharding.runner import ShardRunner
    from repro.workloads import build_workload, get_spec

    workload_spec = get_spec(spec.workload)
    solver_name = spec.solver or workload_spec.solver
    network = build_workload(spec.workload, scale=spec.scale, seed=spec.seed)
    plan = ShardPlan.from_payload(plan_payload, network)
    backend = _build_backend(spec, solver_name)
    runner = ShardRunner(
        network, plan, shard, backend, dt=spec.dt, seed=spec.seed + 1
    )
    return runner, plan


def shard_worker_entry(conn, capture_path: Optional[str] = None) -> None:
    """Process target: run one shard's barrier loop against ``conn``."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    if capture_path:
        _redirect_output(capture_path)
    payload = conn.recv()
    spec = JobSpec.from_payload(payload["spec"])
    shard = int(payload["shard"])
    attempt = int(payload.get("attempt", 0))
    resume = payload.get("resume")
    heartbeat_interval = float(
        payload.get("heartbeat_interval", HEARTBEAT_INTERVAL)
    )
    checkpoint_every = int(payload.get("checkpoint_every", 1))
    chaos = payload.get("chaos") or {}
    chaos_armed = attempt == int(chaos.get("attempt", 0))
    chaos_kill_epoch = chaos.get("kill_epoch")
    chaos_stall_epoch = chaos.get("stall_epoch")

    from repro.errors import ShardingError
    from repro.provenance import (
        SpanRecorder,
        TraceContext,
        barrier_recv_id,
        barrier_send_id,
    )
    from repro.sharding.runner import window_digest

    context = TraceContext.from_payload(payload.get("trace"))
    spans = SpanRecorder(
        context, sidecar_path=payload.get("spans_path")
    )

    step = -1
    try:
        runner, plan = _build_runner(spec, payload["plan"], shard)
        if resume is not None:
            runner.restore(resume)
        step = runner.step
        if step % plan.window:
            raise ShardingError(
                f"shard {shard} resumed at step {step}, which is not a "
                f"barrier boundary (window={plan.window})"
            )
        start_epoch = step // plan.window
        expected_start = int(payload.get("start_epoch", start_epoch))
        if start_epoch != expected_start:
            raise ShardingError(
                f"shard {shard} resumed at epoch {start_epoch}, "
                f"coordinator expected epoch {expected_start}"
            )
        conn.send(
            ("started", {
                "pid": os.getpid(),
                "shard": shard,
                "attempt": attempt,
                "step": step,
                "start_epoch": start_epoch,
                "ts": time.time(),
            })
        )
        heartbeat = _ShardHeartbeat(conn, heartbeat_interval)
        n_epochs = plan.epochs_for(spec.steps)
        n_shards = plan.n_shards
        for epoch in range(start_epoch, n_epochs):
            length = plan.window_length(epoch, spec.steps)
            window_start = time.time()
            window = runner.run_window(
                length, on_step=lambda s: heartbeat.beat(s)
            )
            step = runner.step
            spans.record(
                f"window e{epoch}",
                "window",
                window_start,
                time.time() - window_start,
                args={"step": step, "epoch": epoch},
                flow_out=[barrier_send_id(epoch, shard, n_shards)],
            )
            if chaos_armed and epoch == chaos_kill_epoch:
                # Die *after* the window is computed but *before* it is
                # sent: the worst moment — the coordinator has nothing
                # from this shard for this epoch and must restart it.
                # The span sidecar is the only exit path for this
                # incarnation's ring, so flush it first (the flight
                # recorder does the same before its chaos kill).
                spans.sync(force=True)
                os.kill(os.getpid(), signal.SIGKILL)
            if chaos_armed and epoch == chaos_stall_epoch:
                spans.sync(force=True)
                while True:  # pragma: no cover - killed by the watchdog
                    time.sleep(3600)
            conn.send(
                ("window", {
                    "epoch": epoch,
                    "shard": shard,
                    "fired": window,
                    "digest": window_digest(window),
                    "step": step,
                    "ts": time.time(),
                })
            )
            wait_start = time.time()
            kind, body = conn.recv()
            spans.record(
                f"barrier-wait e{epoch}",
                "barrier",
                wait_start,
                time.time() - wait_start,
                args={"epoch": epoch},
                flow_in=[barrier_recv_id(epoch, shard, n_shards)],
            )
            if kind == "stop":
                conn.send(("stopped", {"shard": shard, "step": step}))
                return
            if kind != "exchange":
                raise ShardingError(
                    f"shard {shard} expected an exchange for epoch "
                    f"{epoch}, got {kind!r}"
                )
            if body.get("epoch") != epoch:
                raise ShardingError(
                    f"shard {shard} got an exchange for epoch "
                    f"{body.get('epoch')!r} while waiting on {epoch}"
                )
            exchange_start = time.time()
            runner.apply_exchange(body["fired"], length)
            spans.record(
                f"exchange e{epoch}",
                "exchange",
                exchange_start,
                time.time() - exchange_start,
                args={"epoch": epoch},
            )
            spans.sync()
            if (
                checkpoint_every
                and (epoch + 1) % checkpoint_every == 0
                and epoch + 1 < n_epochs
            ):
                conn.send(
                    ("checkpoint", {
                        "epoch": epoch,
                        "shard": shard,
                        "state": runner.snapshot(),
                    })
                )
        conn.send(
            ("done", {
                "shard": shard,
                "steps": runner.step,
                "total_spikes": runner.recorder.total_spikes(),
                "spikes": runner.recorder.snapshot(),
                "spans": spans.dump(),
            })
        )
    except MemoryError as error:
        _send_failure(conn, "oom-like", error, shard, step, spans)
        sys.exit(1)
    except BaseException as error:  # noqa: BLE001 - classified, reported
        _send_failure(conn, "crash", error, shard, step, spans)
        sys.exit(1)
    finally:
        conn.close()


def _send_failure(conn, kind: str, error: BaseException, shard: int,
                  step: int, spans=None) -> None:
    """Traceback to stderr (the capture file) + structured message."""
    import traceback

    traceback.print_exc(file=sys.stderr)
    sys.stderr.flush()
    try:
        conn.send(
            ("failed", {
                "kind": kind,
                "shard": shard,
                "error": repr(error),
                "step": step,
                "traceback": traceback.format_exc(),
                "spans": spans.dump() if spans is not None else None,
            })
        )
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass
