"""Table VI: chip area and power of the two digital-neuron arrays.

Paper numbers (for reference in the rendered output):

====================================  ==========  ===========  ==========
Array                                 Component   Area [mm^2]  Power [W]
====================================  ==========  ===========  ==========
Flexon (12 neurons)                   Neuron      1.188        0.130
                                      SRAM        8.070        0.751
                                      Total       9.258        0.881
Spatially Folded Flexon (72 neurons)  Neuron      1.294        0.305
                                      SRAM        6.324        1.179
                                      Total       7.618        1.484
====================================  ==========  ===========  ==========

The shapes to preserve: the 72-neuron folded array fits in a similar
or smaller footprint than the 12-neuron baseline array; SRAM dominates
both; the folded array burns more power (shared units and SRAM busy
every cycle at twice the clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.costmodel.synthesis import ArrayCost, flexon_array_cost, folded_array_cost
from repro.experiments.common import format_table

#: Paper's Table VI rows, for side-by-side rendering.
PAPER_NUMBERS = {
    "Flexon (12 neurons)": {
        "Neuron": (1.188, 0.130),
        "SRAM": (8.070, 0.751),
        "Total": (9.258, 0.881),
    },
    "Spatially Folded Flexon (72 neurons)": {
        "Neuron": (1.294, 0.305),
        "SRAM": (6.324, 1.179),
        "Total": (7.618, 1.484),
    },
}


@dataclass(frozen=True)
class Table6Result:
    """Both array cost breakdowns."""

    flexon: ArrayCost
    folded: ArrayCost


def run() -> Table6Result:
    """Synthesize both Table VI arrays."""
    return Table6Result(flexon=flexon_array_cost(), folded=folded_array_cost())


def format_table6(result: Table6Result) -> str:
    """Render Table VI with measured-vs-paper columns."""
    rows: List[tuple] = []
    for array in (result.flexon, result.folded):
        paper = PAPER_NUMBERS[array.name]
        components = (
            ("Neuron", array.neuron_area_mm2, array.neuron_power_w),
            ("SRAM", array.sram_area_mm2, array.sram_power_w),
            ("Total", array.total_area_mm2, array.total_power_w),
        )
        for component, area, power in components:
            paper_area, paper_power = paper[component]
            rows.append(
                (
                    array.name,
                    component,
                    f"{area:.3f}",
                    f"{paper_area:.3f}",
                    f"{power:.3f}",
                    f"{paper_power:.3f}",
                )
            )
    return format_table(
        [
            "Array",
            "Component",
            "Area [mm^2]",
            "(paper)",
            "Power [W]",
            "(paper)",
        ],
        rows,
    )
