"""Section VI-A: functional verification against the software reference.

"The functional correctness of the implementations is thoroughly
verified by running testbenches for the neuron models and by comparing
the output spikes with those of Brian, a CPU-based SNN simulator."

Our Brian substitute is the reference simulator with forward Euler (the
scheme the hardware discretises). This harness runs full *networks* —
not just isolated neurons — on the reference backend and on both
hardware backends, then compares spike trains:

* baseline Flexon vs folded Flexon must match **exactly** (they are
  bit-identical designs);
* hardware vs float reference must match to a high rate (fixed-point
  rounding perturbs marginal threshold crossings; the trains otherwise
  coincide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hardware.backend import FlexonBackend, FoldedFlexonBackend
from repro.network.backends import ReferenceBackend
from repro.network.simulator import Simulator
from repro.experiments.common import format_table
from repro.workloads import build_workload, workload_names
from repro.workloads.builders import DT


@dataclass(frozen=True)
class ValidationRow:
    """Spike-train comparison for one workload.

    In a recurrent network, a single rounding-perturbed spike changes
    every downstream spike — the dynamics are chaotic — so full-run
    (step, neuron) overlap decays with simulation length even though
    the implementations agree. Two stable metrics accompany it: the
    overlap over the *early horizon* (before divergence can compound)
    and the relative difference in total spike counts (the population
    statistics, which fixed point preserves).
    """

    workload: str
    reference_spikes: int
    flexon_spikes: int
    folded_spikes: int
    #: Jaccard overlap of (step, neuron) spike sets, reference vs Flexon.
    overlap: float
    #: Same overlap restricted to the first `horizon` steps.
    early_overlap: float
    #: Baseline Flexon and folded Flexon produced identical spike sets.
    designs_identical: bool

    @property
    def count_agreement(self) -> float:
        """min/max ratio of total spike counts (1.0 = identical)."""
        hi = max(self.reference_spikes, self.flexon_spikes)
        lo = min(self.reference_spikes, self.flexon_spikes)
        return 1.0 if hi == 0 else lo / hi


def _spike_sets(simulator: Simulator, steps: int):
    result = simulator.run(steps)
    sets = {}
    for name in simulator.network.populations:
        sets[name] = result.spikes.result(name).spike_pairs()
    return result, sets


def validate_workload(
    name: str,
    scale: float = 0.03,
    steps: int = 400,
    seed: int = 5,
    horizon: int = 150,
) -> ValidationRow:
    """Compare reference / Flexon / folded spike trains on one workload.

    The same seeds drive construction and stimulus on every backend, so
    the three simulations see identical inputs until their own spikes
    diverge (fixed-point effects compound through recurrence — overlap
    is measured on the full (step, neuron) spike sets).
    """
    runs = {}
    for key, backend in (
        ("reference", ReferenceBackend("Euler")),
        ("flexon", FlexonBackend(DT)),
        ("folded", FoldedFlexonBackend(DT)),
    ):
        network = build_workload(name, scale=scale, seed=seed)
        simulator = Simulator(network, backend, dt=DT, seed=seed + 1)
        runs[key] = _spike_sets(simulator, steps)

    reference_set = set().union(*runs["reference"][1].values())
    flexon_set = set().union(*runs["flexon"][1].values())
    folded_set = set().union(*runs["folded"][1].values())

    def jaccard(a, b):
        union = a | b
        return len(a & b) / len(union) if union else 1.0

    early_ref = {pair for pair in reference_set if pair[0] < horizon}
    early_fx = {pair for pair in flexon_set if pair[0] < horizon}
    return ValidationRow(
        workload=name,
        reference_spikes=len(reference_set),
        flexon_spikes=len(flexon_set),
        folded_spikes=len(folded_set),
        overlap=jaccard(reference_set, flexon_set),
        early_overlap=jaccard(early_ref, early_fx),
        designs_identical=flexon_set == folded_set,
    )


def run(
    scale: float = 0.03,
    steps: int = 400,
    names: Optional[List[str]] = None,
) -> List[ValidationRow]:
    """Validate all (or the given) workloads."""
    return [
        validate_workload(name, scale=scale, steps=steps)
        for name in (names if names is not None else workload_names())
    ]


def format_validation(rows: List[ValidationRow]) -> str:
    """Render the Section VI-A verification table."""
    table = []
    for row in rows:
        table.append(
            (
                row.workload,
                row.reference_spikes,
                row.flexon_spikes,
                row.folded_spikes,
                f"{100 * row.count_agreement:.1f}%",
                f"{100 * row.early_overlap:.1f}%",
                f"{100 * row.overlap:.1f}%",
                "yes" if row.designs_identical else "NO",
            )
        )
    return format_table(
        [
            "Workload",
            "Ref spikes",
            "Flexon spikes",
            "Folded spikes",
            "Count agr.",
            "Early overlap",
            "Full overlap",
            "Flexon==Folded",
        ],
        table,
    )
