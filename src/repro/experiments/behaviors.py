"""Neuronal behaviour regimes on Flexon hardware.

The paper's related work highlights that Izhikevich's model "emulates
20 neuronal behaviors which integrate-and-fire models cannot emulate"
and that "Flexon fully supports Izhikevich's model". This harness
demonstrates a representative set of those behaviours *on the
fixed-point hardware model*, each as a feature combination plus a
parameter preset (including the elevated-reset trick that Izhikevich's
``c`` parameter provides — our ``v_reset``):

========================  =====================================
behaviour                  mechanism
========================  =====================================
tonic spiking              plain LIF under constant drive
phasic spiking             strong fast adaptation silences after onset
spike-frequency adaptation slow ADT stretches the ISIs
mixed mode                 elevated reset + adaptation: onset burst,
                           then tonic singles (Izhikevich's "mixed mode")
class-1 excitability       QDI: rate grows smoothly from zero with drive
refractory ceiling         AR caps the rate regardless of drive
========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.features import Feature, FeatureSet
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models import ModelParameters
from repro.models.feature_model import FeatureModel

DT = 1e-4


@dataclass(frozen=True)
class BehaviorPreset:
    """One demonstrable behaviour: model config + stimulus."""

    name: str
    features: FeatureSet
    parameters: ModelParameters
    drive: Callable[[int], float]
    steps: int = 6000


def _const(value: float) -> Callable[[int], float]:
    return lambda _step: value


PRESETS: Dict[str, BehaviorPreset] = {
    "tonic spiking": BehaviorPreset(
        name="tonic spiking",
        features=FeatureSet([Feature.EXD, Feature.CUB]),
        parameters=ModelParameters(tau=20e-3),
        drive=_const(2.0),
    ),
    "phasic spiking": BehaviorPreset(
        name="phasic spiking",
        features=FeatureSet([Feature.EXD, Feature.CUB, Feature.ADT]),
        # Large, slowly decaying adaptation: the onset fires a few
        # spikes, then w pins the neuron below threshold.
        parameters=ModelParameters(tau=20e-3, tau_w=2.0, b=0.02),
        drive=_const(1.6),
    ),
    "spike-frequency adaptation": BehaviorPreset(
        name="spike-frequency adaptation",
        features=FeatureSet([Feature.EXD, Feature.CUB, Feature.ADT]),
        parameters=ModelParameters(tau=20e-3, tau_w=300e-3, b=0.001),
        drive=_const(2.0),
        steps=8000,
    ),
    "mixed mode": BehaviorPreset(
        name="mixed mode",
        features=FeatureSet([Feature.EXD, Feature.CUB, Feature.ADT]),
        # Izhikevich's elevated-reset trick (his ``c``): the reset just
        # below threshold refires immediately until the accumulated
        # adaptation ends the onset burst; the slow decay then settles
        # into tonic single spikes — the "mixed mode" behaviour.
        parameters=ModelParameters(
            tau=20e-3, v_reset=0.92, tau_w=500e-3, b=0.0025
        ),
        drive=_const(2.5),
    ),
    "class-1 excitability": BehaviorPreset(
        name="class-1 excitability",
        features=FeatureSet(
            [Feature.EXD, Feature.COBE, Feature.QDI]
        ),
        parameters=ModelParameters(tau=20e-3, v_c=0.5, v_theta=2.0),
        drive=_const(0.0),  # swept by the verifier
    ),
    "refractory ceiling": BehaviorPreset(
        name="refractory ceiling",
        features=FeatureSet([Feature.EXD, Feature.CUB, Feature.AR]),
        parameters=ModelParameters(tau=20e-3, t_ref=10e-3),
        drive=_const(50.0),
    ),
}


def run_behavior(
    preset: BehaviorPreset, drive: Optional[float] = None
) -> List[int]:
    """Spike steps of one hardware neuron under the preset."""
    model = FeatureModel(preset.features, preset.parameters)
    compiled = FlexonCompiler().compile(model, DT)
    neuron = compiled.instantiate_flexon(1)
    n_types = preset.parameters.n_synapse_types
    spikes = []
    for step in range(preset.steps):
        weights = np.zeros((n_types, 1))
        weights[0, 0] = preset.drive(step) if drive is None else drive
        raw = fx_from_float(weights * compiled.weight_scale, FLEXON_FORMAT)
        if neuron.step(raw)[0]:
            spikes.append(step)
    return spikes


def burstiness(spikes: List[int], gap_steps: int = 50) -> float:
    """Mean burst length: spikes per cluster separated by > gap."""
    if not spikes:
        return 0.0
    clusters = [1]
    for previous, current in zip(spikes, spikes[1:]):
        if current - previous <= gap_steps:
            clusters[-1] += 1
        else:
            clusters.append(1)
    return float(np.mean(clusters))


def rate_curve(
    preset: BehaviorPreset, drives: Sequence[float]
) -> List[float]:
    """Firing rate [Hz] as a function of constant drive (f-I curve)."""
    duration = preset.steps * DT
    return [
        len(run_behavior(preset, drive=d)) / duration for d in drives
    ]
