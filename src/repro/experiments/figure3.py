"""Figure 3: breakdown of SNN simulation latencies by phase.

The paper profiles the ten Table I SNNs on NEST (CPU) and GeNN (GPU)
and reports, per SNN, the share of per-time-step latency spent in
stimulus generation, neuron computation, and synapse calculation. The
headline observations the reproduction must preserve:

* neuron computation is a major — often dominant — share on the CPU,
  especially for RKF45 workloads;
* Euler and the GPU shrink the share, but it stays material ("up to
  32.2%" in the paper's most favourable cases).

We measure per-unit activity by running each workload at a reduced
scale, then evaluate the calibrated CPU/GPU cost models at the full
Table I scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.costmodel.cpu_gpu import (
    CPU_SPEC,
    GPU_SPEC,
    PhaseLatency,
    ProcessorSpec,
    phase_latencies,
)
from repro.experiments.common import (
    WorkloadProfile,
    format_table,
    profile_workload,
)
from repro.workloads import get_spec, workload_names


@dataclass(frozen=True)
class BreakdownRow:
    """One bar of Figure 3: a workload on one platform."""

    workload: str
    platform: str
    latency: PhaseLatency

    @property
    def neuron_fraction(self) -> float:
        return self.latency.fractions()["neuron"]


def breakdown_for(
    profile: WorkloadProfile, spec: ProcessorSpec, gpu: bool = False
) -> PhaseLatency:
    """Per-step phase latencies at full scale on one platform.

    On the GPU, neuron updates always use forward Euler (GeNN does not
    ship RKF45), so the evaluation count collapses to 1 — one of the
    two reasons Figure 3's GPU bars show smaller neuron shares.
    """
    events = profile.full_scale_events()
    evaluations = 1.0 if gpu else profile.evaluations_per_step
    return phase_latencies(
        spec,
        n_neurons=int(events["neurons"]),
        ops_per_update=profile.ops_per_update,
        evaluations_per_step=evaluations,
        synaptic_events_per_step=events["synaptic"],
        stimulus_events_per_step=events["stimulus"],
    )


def run(
    scale: float = 0.05,
    steps: int = 300,
    seed: int = 1,
    names: Optional[List[str]] = None,
    supervised: bool = False,
) -> List[BreakdownRow]:
    """Regenerate Figure 3: every workload on CPU and GPU.

    ``supervised=True`` measures each workload in a process-isolated,
    deadline-guarded worker with retry and crash recovery (see
    :func:`repro.experiments.common.supervised_profiles`) — same
    numbers, but a hung or killed workload cannot take the sweep down.
    """
    names = list(names) if names is not None else workload_names()
    if supervised:
        from repro.experiments.common import supervised_profiles

        profiles = supervised_profiles(
            names, scale=scale, steps=steps, seed=seed
        )
    else:
        profiles = [
            profile_workload(name, scale=scale, steps=steps, seed=seed)
            for name in names
        ]
    rows: List[BreakdownRow] = []
    for name, profile in zip(names, profiles):
        rows.append(
            BreakdownRow(name, "CPU", breakdown_for(profile, CPU_SPEC))
        )
        rows.append(
            BreakdownRow(name, "GPU", breakdown_for(profile, GPU_SPEC, gpu=True))
        )
    return rows


def format_figure3(rows: List[BreakdownRow]) -> str:
    """Render the Figure 3 series: percentage table + stacked bars."""
    from repro.experiments.charts import stacked_fraction_chart

    table = []
    chart_rows = []
    for row in rows:
        fractions = row.latency.fractions()
        table.append(
            (
                row.workload,
                row.platform,
                f"{row.latency.total_s * 1e6:.1f}",
                f"{100 * fractions['stimulus']:.1f}%",
                f"{100 * fractions['neuron']:.1f}%",
                f"{100 * fractions['synapse']:.1f}%",
            )
        )
        chart_rows.append(
            {
                "label": f"{row.workload} ({row.platform})",
                "stimulus": fractions["stimulus"],
                "neuron": fractions["neuron"],
                "synapse": fractions["synapse"],
            }
        )
    chart = stacked_fraction_chart(
        chart_rows,
        parts=("stimulus", "neuron", "synapse"),
        symbols=(".", "#", "="),
    )
    text = format_table(
        ["Workload", "Platform", "us/step", "Stimulus", "Neuron", "Synapse"],
        table,
    )
    return text + "\n\n" + chart


def table1_inventory() -> str:
    """Render the Table I workload inventory."""
    rows = []
    for name in workload_names():
        spec = get_spec(name)
        rows.append(
            (
                spec.name,
                f"{spec.paper_neurons:,}",
                f"{spec.paper_synapses:,}",
                spec.model_name,
                spec.solver,
                spec.framework,
            )
        )
    return format_table(
        ["Name", "Neurons", "Synapses", "Neuron Model", "Solver", "Framework"],
        rows,
    )
