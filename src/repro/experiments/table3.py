"""Table III: feature combinations simulate the published models.

The claim: each of the eleven neuron models of Table III is expressible
as a combination of the 12 biologically common features. This harness
*verifies* the claim executably: for every model it

1. prints the feature-combination matrix (the table itself);
2. compiles the combination for Flexon and runs the fixed-point
   hardware next to the float reference under identical stimuli,
   reporting the spike-match rate (the combination actually *works*,
   not just type-checks);
3. confirms baseline Flexon and folded Flexon agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.features import Feature, MODEL_FEATURES, combination_matrix
from repro.experiments.common import format_table
from repro.fixedpoint import fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models.registry import create_model

#: Stimulus strength per model family: CUB models integrate currents
#: (need >1 to cross threshold), conductance models integrate jumps.
_CURRENT_MODELS = {"LIF", "LLIF", "SLIF"}


@dataclass(frozen=True)
class Table3Row:
    """Verification outcome for one neuron model."""

    model: str
    features: List[str]
    n_signals: int
    hardware_spikes: int
    reference_spikes: int
    spike_match: float  #: per-step agreement of fired masks
    bit_exact: bool  #: baseline Flexon == folded Flexon


def verify_model(
    name: str,
    n: int = 32,
    steps: int = 800,
    dt: float = 1e-4,
    seed: int = 7,
) -> Table3Row:
    """Run one model's feature combination against the reference."""
    model = create_model(name)
    compiled = FlexonCompiler().compile(model, dt)
    flexon = compiled.instantiate_flexon(n)
    folded = compiled.instantiate_folded(n)
    reference = model.initial_state(n)
    rng = np.random.default_rng(seed)
    base = 40.0 if name in _CURRENT_MODELS else 1.5
    n_types = model.parameters.n_synapse_types
    hardware_spikes = reference_spikes = agreement = 0
    bit_exact = True
    for _ in range(steps):
        weights = (rng.random((n_types, n)) < 0.08) * base
        if n_types > 1:
            weights[1] *= 0.2
        raw = fx_from_float(
            weights * compiled.weight_scale, compiled.constants.fmt
        )
        fired_fx = flexon.step(raw.copy())
        fired_fd = folded.step(raw.copy())
        bit_exact = bit_exact and bool(np.array_equal(fired_fx, fired_fd))
        fired_ref = model.step(reference, weights.copy(), dt)
        hardware_spikes += int(fired_fx.sum())
        reference_spikes += int(fired_ref.sum())
        agreement += int((fired_fx == fired_ref).sum())
    return Table3Row(
        model=name,
        features=[f.value for f in MODEL_FEATURES[name]],
        n_signals=compiled.program.n_signals,
        hardware_spikes=hardware_spikes,
        reference_spikes=reference_spikes,
        spike_match=agreement / (steps * n),
        bit_exact=bit_exact,
    )


def run(steps: int = 800, n: int = 32) -> List[Table3Row]:
    """Verify every Table III model (LIF baseline included)."""
    return [
        verify_model(name, n=n, steps=steps) for name in MODEL_FEATURES
    ]


def format_matrix() -> str:
    """Render the Table III checkmark matrix."""
    feature_names = [f.value for f in Feature]
    rows = []
    for model, enabled in combination_matrix():
        rows.append(
            [model] + ["x" if enabled[name] else "" for name in feature_names]
        )
    return format_table(["Neuron Model"] + feature_names, rows)


def format_verification(rows: List[Table3Row]) -> str:
    """Render the executable verification of the matrix."""
    table = []
    for row in rows:
        table.append(
            (
                row.model,
                "+".join(row.features),
                row.n_signals,
                row.hardware_spikes,
                row.reference_spikes,
                f"{100 * row.spike_match:.2f}%",
                "yes" if row.bit_exact else "NO",
            )
        )
    return format_table(
        [
            "Model",
            "Features",
            "Signals",
            "HW spikes",
            "Ref spikes",
            "Match",
            "Flexon==Folded",
        ],
        table,
    )
