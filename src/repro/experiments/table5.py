"""Table V: control signals emulating the features on folded Flexon.

The paper's Table V lists, per feature (combination), the micro-
operations and their control-signal fields. This harness regenerates
the listing from the assembler for representative combinations and
reports the per-feature cycle counts the scheduling implies — e.g. the
Section V-B example that LIF (CUB + EXD) needs a single control signal
while QDI needs two passes over the single multiplier, giving a
three-cycle latency through the two-stage pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.features import Feature, FeatureSet
from repro.experiments.common import format_table
from repro.hardware.constants import prepare_constants
from repro.hardware.microcode import Microprogram, assemble
from repro.models.base import ModelParameters

#: Representative feature combinations, mirroring Table V's rows.
TABLE5_COMBINATIONS: List[Tuple[str, FeatureSet]] = [
    ("LID (+CUB)", FeatureSet([Feature.LID, Feature.CUB])),
    ("CUB + EXD (LIF)", FeatureSet([Feature.EXD, Feature.CUB])),
    ("EXD only", FeatureSet([Feature.EXD])),
    ("COBE", FeatureSet([Feature.EXD, Feature.COBE])),
    ("COBA", FeatureSet([Feature.EXD, Feature.COBA])),
    ("REV", FeatureSet([Feature.EXD, Feature.COBE, Feature.REV])),
    ("ADT", FeatureSet([Feature.EXD, Feature.CUB, Feature.ADT])),
    (
        "SBT + ADT",
        FeatureSet([Feature.EXD, Feature.CUB, Feature.ADT, Feature.SBT]),
    ),
    ("RR", FeatureSet([Feature.EXD, Feature.CUB, Feature.RR])),
    ("QDI + EXD", FeatureSet([Feature.EXD, Feature.COBE, Feature.QDI])),
    ("EXI + EXD", FeatureSet([Feature.EXD, Feature.COBE, Feature.EXI])),
]


@dataclass(frozen=True)
class Table5Row:
    """One Table V entry: a combination and its assembled program."""

    label: str
    program: Microprogram

    @property
    def n_signals(self) -> int:
        return self.program.n_signals

    @property
    def single_neuron_cycles(self) -> int:
        """End-to-end latency of one neuron through the 2-stage pipe."""
        return self.program.cycles_per_neuron


def run(
    dt: float = 1e-4, n_synapse_types: int = 1
) -> List[Table5Row]:
    """Assemble the Table V programs (single synapse type, as printed)."""
    parameters = ModelParameters(
        n_synapse_types=n_synapse_types,
        tau_g=(5e-3,) * max(1, n_synapse_types),
        v_g=(4.33,) * max(1, n_synapse_types),
    )
    rows = []
    for label, features in TABLE5_COMBINATIONS:
        constants = prepare_constants(parameters, features, dt)
        rows.append(Table5Row(label, assemble(features, constants)))
    return rows


def format_table5(rows: List[Table5Row]) -> str:
    """Render the control-signal listings plus cycle summary."""
    sections = []
    summary = []
    for row in rows:
        lines = [f"{row.label} ({row.n_signals} signals)"]
        for i, signal in enumerate(row.program.signals):
            fields = (
                f"a={int(signal.a)} b={int(signal.b)} s={signal.s} "
                f"exp={int(signal.exp)} s_wr={int(signal.s_wr)} "
                f"v_acc={int(signal.v_acc)}"
            )
            lines.append(f"  {i}: {signal.describe():44s} [{fields}]")
        sections.append("\n".join(lines))
        summary.append(
            (row.label, row.n_signals, row.single_neuron_cycles)
        )
    summary_table = format_table(
        ["Feature(s)", "Control signals", "Single-neuron cycles"], summary
    )
    return "\n\n".join(sections) + "\n\n" + summary_table


def signals_per_model(dt: float = 1e-4) -> Dict[str, int]:
    """Signal counts for the full Table III models (2 synapse types)."""
    from repro.features import MODEL_FEATURES
    from repro.models.registry import create_model
    from repro.hardware.compiler import FlexonCompiler

    compiler = FlexonCompiler()
    out = {}
    for name in MODEL_FEATURES:
        compiled = compiler.compile(create_model(name), dt)
        out[name] = compiled.program.n_signals
    return out
