"""Experiment harnesses: one module per paper table/figure.

Each module exposes a ``run(...)`` entry point returning a structured
result plus a ``format_*`` helper that renders the same rows/series the
paper reports:

* :mod:`repro.experiments.figure3` — per-phase latency breakdown on the
  CPU and GPU models for all ten Table I SNNs (plus the Table I
  inventory itself);
* :mod:`repro.experiments.table3` — feature combinations simulate the
  eleven neuron models (verified against the reference simulator);
* :mod:`repro.experiments.table5` — folded-Flexon microprogram listings
  and cycle counts per feature;
* :mod:`repro.experiments.figure12` — area/power of the per-feature
  data paths, baseline Flexon, and folded Flexon;
* :mod:`repro.experiments.table6` — array-level area/power;
* :mod:`repro.experiments.figure13` — latency and energy-efficiency
  improvements of both arrays over CPU and GPU per workload;
* :mod:`repro.experiments.validation` — the Section VI-A output-spike
  verification against the software reference;
* :mod:`repro.experiments.resilience` — spike-train drift under
  injected faults (bit flips, dropped spikes, input noise), the
  measured counterpart of the Section VI-A fault-free claim;
* :mod:`repro.experiments.figures4to8` — the feature-behaviour sketch
  figures, regenerated as fixed-point hardware traces;
* :mod:`repro.experiments.behaviors` — Izhikevich-style neuronal
  behaviour regimes demonstrated on the hardware model;
* :mod:`repro.experiments.amdahl` — end-to-end (whole-step) speedups,
  bounded by the host-side phases;
* :mod:`repro.experiments.charts` — ASCII bar/stacked/line rendering
  shared by the figure-shaped outputs.
"""

from repro.experiments.common import (
    WorkloadProfile,
    format_table,
    profile_workload,
)

__all__ = ["WorkloadProfile", "format_table", "profile_workload"]
