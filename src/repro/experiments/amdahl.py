"""End-to-end speedup analysis (Amdahl's law over the three phases).

Figure 13 reports *neuron-computation* speedups; the obvious systems
question is what Flexon buys end to end, since stimulus generation and
synapse calculation stay on the host (Section II-C). This analysis
combines the Figure 3 phase model with the Figure 13 array latencies:

    total_after = stimulus + synapse + neuron_on_array

The whole-step speedup is bounded by the host-side share — Amdahl's
law — which is why the paper's own Figure 3 motivates accelerating the
*dominant* phase and why RKF45 workloads (neuron-bound) gain far more
end to end than Euler workloads (synapse-bound on the CPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.costmodel.cpu_gpu import CPU_SPEC
from repro.costmodel.energy import geomean, improvement
from repro.experiments.common import WorkloadProfile, format_table, profile_workload
from repro.experiments.figure3 import breakdown_for
from repro.experiments.figure13 import _folded_signals
from repro.hardware.array import FoldedFlexonArray
from repro.workloads import get_spec, workload_names


@dataclass(frozen=True)
class AmdahlRow:
    """End-to-end per-step latencies before/after offloading."""

    workload: str
    cpu_total_s: float
    cpu_neuron_s: float
    array_neuron_s: float

    @property
    def host_share(self) -> float:
        """Fraction of the original step outside neuron computation."""
        return 1.0 - self.cpu_neuron_s / self.cpu_total_s

    @property
    def total_after_s(self) -> float:
        return self.cpu_total_s - self.cpu_neuron_s + self.array_neuron_s

    @property
    def end_to_end_speedup(self) -> float:
        return improvement(self.cpu_total_s, self.total_after_s)

    @property
    def neuron_speedup(self) -> float:
        return improvement(self.cpu_neuron_s, self.array_neuron_s)

    @property
    def amdahl_bound(self) -> float:
        """Upper bound with an infinitely fast neuron array."""
        return 1.0 / self.host_share if self.host_share > 0 else float("inf")


def evaluate(profile: WorkloadProfile) -> AmdahlRow:
    """End-to-end analysis for one workload on CPU + folded array."""
    latency = breakdown_for(profile, CPU_SPEC)
    spec = get_spec(profile.name)
    array = FoldedFlexonArray()
    array_neuron = array.step_latency_seconds(
        spec.paper_neurons, cycles_per_neuron=_folded_signals(profile.name)
    )
    return AmdahlRow(
        workload=profile.name,
        cpu_total_s=latency.total_s,
        cpu_neuron_s=latency.neuron_s,
        array_neuron_s=array_neuron,
    )


def run(
    scale: float = 0.03,
    steps: int = 200,
    names: Optional[List[str]] = None,
) -> List[AmdahlRow]:
    """Analyse all (or the given) workloads."""
    return [
        evaluate(profile_workload(name, scale=scale, steps=steps))
        for name in (names if names is not None else workload_names())
    ]


def format_amdahl(rows: List[AmdahlRow]) -> str:
    """Render the end-to-end analysis."""
    table = []
    for row in rows:
        table.append(
            (
                row.workload,
                f"{row.cpu_total_s * 1e6:.1f}",
                f"{row.total_after_s * 1e6:.1f}",
                f"{row.neuron_speedup:.1f}x",
                f"{row.end_to_end_speedup:.2f}x",
                f"{row.amdahl_bound:.2f}x",
            )
        )
    text = format_table(
        [
            "Workload",
            "CPU us/step",
            "With folded array",
            "Neuron speedup",
            "End-to-end speedup",
            "Amdahl bound",
        ],
        table,
    )
    overall = geomean(row.end_to_end_speedup for row in rows)
    return (
        text
        + f"\n\ngeomean end-to-end speedup: {overall:.2f}x "
        "(vs the neuron-phase-only geomean of Figure 13a) — the host-side "
        "stimulus and synapse phases bound the whole-step gain, which is "
        "why neuron-dominated RKF45 workloads benefit most."
    )
