"""Figure 13: speedups and energy-efficiency gains over CPU and GPU.

For each Table I workload, the paper compares the *neuron computation
phase* of one time step on four platforms: the Xeon (NEST), the
Titan X (GeNN), the 12-neuron Flexon array, and the 72-neuron folded
Flexon array. Reported shapes this reproduction must preserve:

* both arrays beat the CPU by roughly two orders of magnitude and the
  GPU by roughly one (paper geomeans: Flexon 87.4x / 8.19x, folded
  122.5x / 9.83x);
* the folded array usually wins on latency (more neurons in flight),
  *except* on the Destexhe workloads, whose long AdEx microprograms
  (three synapse types) make the single-cycle design faster;
* the baseline Flexon array wins on energy efficiency (paper: 6,186x /
  442x over CPU/GPU vs the folded array's 5,415x / 135x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.costmodel.cpu_gpu import (
    CPU_SPEC,
    GPU_SPEC,
    neuron_phase_latency,
)
from repro.costmodel.energy import energy_joules, geomean, improvement
from repro.costmodel.synthesis import flexon_array_cost, folded_array_cost
from repro.experiments.common import (
    WorkloadProfile,
    format_table,
    profile_workload,
)
from repro.hardware.array import FlexonArray, FoldedFlexonArray
from repro.hardware.compiler import FlexonCompiler
from repro.workloads import build_workload, get_spec, workload_names
from repro.workloads.builders import DT


@dataclass(frozen=True)
class PlatformResult:
    """Neuron-computation latency and energy of one platform."""

    latency_s: float
    energy_j: float


@dataclass(frozen=True)
class Figure13Row:
    """One workload's results on all four platforms."""

    workload: str
    cpu: PlatformResult
    gpu: PlatformResult
    flexon: PlatformResult
    folded: PlatformResult

    def speedups(self) -> Dict[str, float]:
        return {
            "flexon_vs_cpu": improvement(self.cpu.latency_s, self.flexon.latency_s),
            "flexon_vs_gpu": improvement(self.gpu.latency_s, self.flexon.latency_s),
            "folded_vs_cpu": improvement(self.cpu.latency_s, self.folded.latency_s),
            "folded_vs_gpu": improvement(self.gpu.latency_s, self.folded.latency_s),
        }

    def efficiency_gains(self) -> Dict[str, float]:
        return {
            "flexon_vs_cpu": improvement(self.cpu.energy_j, self.flexon.energy_j),
            "flexon_vs_gpu": improvement(self.gpu.energy_j, self.flexon.energy_j),
            "folded_vs_cpu": improvement(self.cpu.energy_j, self.folded.energy_j),
            "folded_vs_gpu": improvement(self.gpu.energy_j, self.folded.energy_j),
        }


def _folded_signals(name: str) -> int:
    """Microprogram length of a workload's neuron model.

    Uses the workload's own model parameters (Destexhe runs three
    synapse types, which lengthens its AdEx program).
    """
    network = build_workload(name, scale=0.01, seed=0)
    model = next(iter(network.populations.values())).model
    compiled = FlexonCompiler().compile(model, DT)
    return compiled.program.n_signals


def evaluate_workload(
    profile: WorkloadProfile,
    flexon_array: Optional[FlexonArray] = None,
    folded_array: Optional[FoldedFlexonArray] = None,
) -> Figure13Row:
    """Neuron-phase latency/energy of one workload on all platforms."""
    spec = get_spec(profile.name)
    n = spec.paper_neurons
    flexon_array = flexon_array if flexon_array is not None else FlexonArray()
    folded_array = folded_array if folded_array is not None else FoldedFlexonArray()

    cpu_latency = neuron_phase_latency(
        CPU_SPEC, n, profile.ops_per_update, profile.evaluations_per_step
    )
    gpu_latency = neuron_phase_latency(
        GPU_SPEC, n, profile.ops_per_update, 1.0  # GeNN integrates with Euler
    )
    flexon_latency = flexon_array.step_latency_seconds(n)
    folded_latency = folded_array.step_latency_seconds(
        n, cycles_per_neuron=_folded_signals(profile.name)
    )
    flexon_power = flexon_array_cost(flexon_array.n_physical).total_power_w
    folded_power = folded_array_cost(folded_array.n_physical).total_power_w
    return Figure13Row(
        workload=profile.name,
        cpu=PlatformResult(
            cpu_latency, energy_joules(CPU_SPEC.power_w, cpu_latency)
        ),
        gpu=PlatformResult(
            gpu_latency, energy_joules(GPU_SPEC.power_w, gpu_latency)
        ),
        flexon=PlatformResult(
            flexon_latency, energy_joules(flexon_power, flexon_latency)
        ),
        folded=PlatformResult(
            folded_latency, energy_joules(folded_power, folded_latency)
        ),
    )


def run(
    scale: float = 0.05,
    steps: int = 300,
    seed: int = 1,
    names: Optional[List[str]] = None,
    supervised: bool = False,
) -> List[Figure13Row]:
    """Regenerate Figure 13 for all (or the given) workloads.

    ``supervised=True`` profiles each workload in a process-isolated,
    deadline-guarded worker (see :func:`repro.experiments.common.
    supervised_profiles`) instead of in-process.
    """
    names = list(names) if names is not None else workload_names()
    if supervised:
        from repro.experiments.common import supervised_profiles

        profiles = supervised_profiles(
            names, scale=scale, steps=steps, seed=seed
        )
    else:
        profiles = [
            profile_workload(name, scale=scale, steps=steps, seed=seed)
            for name in names
        ]
    return [evaluate_workload(profile) for profile in profiles]


def geomean_speedups(rows: List[Figure13Row]) -> Dict[str, float]:
    """Figure 13a's geometric-mean bars."""
    keys = ("flexon_vs_cpu", "flexon_vs_gpu", "folded_vs_cpu", "folded_vs_gpu")
    return {
        key: geomean(row.speedups()[key] for row in rows) for key in keys
    }


def geomean_efficiency(rows: List[Figure13Row]) -> Dict[str, float]:
    """Figure 13b's geometric-mean bars."""
    keys = ("flexon_vs_cpu", "flexon_vs_gpu", "folded_vs_cpu", "folded_vs_gpu")
    return {
        key: geomean(row.efficiency_gains()[key] for row in rows)
        for key in keys
    }


def format_figure13(rows: List[Figure13Row]) -> str:
    """Render both panels of Figure 13 as tables."""
    latency_rows = []
    energy_rows = []
    for row in rows:
        speedups = row.speedups()
        gains = row.efficiency_gains()
        latency_rows.append(
            (
                row.workload,
                f"{row.cpu.latency_s * 1e6:.1f}",
                f"{row.gpu.latency_s * 1e6:.1f}",
                f"{row.flexon.latency_s * 1e6:.2f}",
                f"{row.folded.latency_s * 1e6:.2f}",
                f"{speedups['flexon_vs_cpu']:.1f}x/{speedups['flexon_vs_gpu']:.1f}x",
                f"{speedups['folded_vs_cpu']:.1f}x/{speedups['folded_vs_gpu']:.1f}x",
            )
        )
        energy_rows.append(
            (
                row.workload,
                f"{gains['flexon_vs_cpu']:.0f}x",
                f"{gains['flexon_vs_gpu']:.0f}x",
                f"{gains['folded_vs_cpu']:.0f}x",
                f"{gains['folded_vs_gpu']:.0f}x",
            )
        )
    speed = geomean_speedups(rows)
    efficiency = geomean_efficiency(rows)
    part_a = format_table(
        [
            "Workload",
            "CPU us",
            "GPU us",
            "Flexon us",
            "Folded us",
            "Flexon vs CPU/GPU",
            "Folded vs CPU/GPU",
        ],
        latency_rows,
    )
    part_b = format_table(
        [
            "Workload",
            "Flexon/CPU",
            "Flexon/GPU",
            "Folded/CPU",
            "Folded/GPU",
        ],
        energy_rows,
    )
    summary = (
        f"geomean latency: Flexon {speed['flexon_vs_cpu']:.1f}x CPU, "
        f"{speed['flexon_vs_gpu']:.2f}x GPU (paper 87.4x / 8.19x); "
        f"folded {speed['folded_vs_cpu']:.1f}x CPU, "
        f"{speed['folded_vs_gpu']:.2f}x GPU (paper 122.5x / 9.83x)\n"
        f"geomean energy eff.: Flexon {efficiency['flexon_vs_cpu']:.0f}x CPU, "
        f"{efficiency['flexon_vs_gpu']:.0f}x GPU (paper 6186x / 442x); "
        f"folded {efficiency['folded_vs_cpu']:.0f}x CPU, "
        f"{efficiency['folded_vs_gpu']:.0f}x GPU (paper 5415x / 135x)"
    )
    from repro.experiments.charts import bar_chart

    chart = bar_chart(
        {
            "Flexon vs CPU (latency)": speed["flexon_vs_cpu"],
            "Folded vs CPU (latency)": speed["folded_vs_cpu"],
            "Flexon vs GPU (latency)": speed["flexon_vs_gpu"],
            "Folded vs GPU (latency)": speed["folded_vs_gpu"],
            "Flexon vs CPU (energy)": efficiency["flexon_vs_cpu"],
            "Folded vs CPU (energy)": efficiency["folded_vs_cpu"],
            "Flexon vs GPU (energy)": efficiency["flexon_vs_gpu"],
            "Folded vs GPU (energy)": efficiency["folded_vs_gpu"],
        },
        unit="x",
        log_scale=True,
    )
    return (
        "Figure 13a (neuron-computation latency per step)\n"
        + part_a
        + "\n\nFigure 13b (energy-efficiency improvement)\n"
        + part_b
        + "\n\n"
        + summary
        + "\n\ngeomean improvements (log scale)\n"
        + chart
    )
