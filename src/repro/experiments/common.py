"""Shared experiment plumbing: profiling and table rendering.

The evaluation methodology mirrors the paper's: workloads are *run* (at
a reduced scale so CI stays fast) to measure per-unit activity — firing
rates, synaptic events per neuron, solver evaluations — and the cost
models are then evaluated at the full Table I scale using those
measured rates. This is the standard trace-driven-modeling substitute
for the authors' physical testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.network.backends import ReferenceBackend
from repro.network.simulator import Simulator
from repro.workloads import build_workload, get_spec
from repro.workloads.builders import DT


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured per-unit activity of one workload.

    All rates are intensive quantities (per neuron / per synapse), so
    they transfer from the profiled scale to the full Table I scale.
    """

    name: str
    scale: float
    n_neurons: int
    n_synapses: int
    firing_rate_hz: float
    #: synaptic events per synapse per time step
    synaptic_event_rate: float
    #: stimulus events per neuron per time step
    stimulus_event_rate: float
    #: solver evaluations per population per step (mean across pops)
    evaluations_per_step: float
    #: weighted arithmetic ops of one neuron update (model-dependent)
    ops_per_update: Dict[str, int]

    def full_scale_events(self) -> Dict[str, float]:
        """Per-step event counts at the full Table I scale."""
        spec = get_spec(self.name)
        return {
            "neurons": float(spec.paper_neurons),
            "synaptic": self.synaptic_event_rate * spec.paper_synapses,
            "stimulus": self.stimulus_event_rate * spec.paper_neurons,
        }


def profile_workload(
    name: str,
    scale: float = 0.05,
    steps: int = 400,
    seed: int = 1,
    solver: Optional[str] = None,
    use_engine: bool = True,
) -> WorkloadProfile:
    """Run one workload briefly and extract its per-unit activity.

    ``use_engine=False`` profiles on the dict-state solver path instead
    of the compiled step-plan path; the measured activity is identical
    (the two are spike-identical), only wall-clock differs.
    """
    spec = get_spec(name)
    network = build_workload(name, scale=scale, seed=seed)
    solver_name = solver if solver is not None else spec.solver
    simulator = Simulator(
        network,
        ReferenceBackend(solver_name, use_engine=use_engine),
        dt=DT,
        seed=seed + 1,
    )
    result = simulator.run(steps)
    duration = steps * DT
    n = network.n_neurons
    synapses = max(1, network.n_synapses)
    evaluations = result.evaluations_per_step
    mean_evals = (
        sum(evaluations.values()) / len(evaluations) if evaluations else 1.0
    )
    # Ops of the (first) population's model — workloads are homogeneous.
    model = next(iter(network.populations.values())).model
    return WorkloadProfile(
        name=name,
        scale=scale,
        n_neurons=n,
        n_synapses=network.n_synapses,
        firing_rate_hz=result.total_spikes() / max(1, n) / duration,
        synaptic_event_rate=result.synaptic_events / steps / synapses,
        stimulus_event_rate=result.stimulus_events / steps / max(1, n),
        evaluations_per_step=mean_evals,
        ops_per_update=model.ops_per_update(),
    )


def supervised_profiles(
    names: Sequence[str],
    scale: float = 0.05,
    steps: int = 400,
    seed: int = 1,
    solver: Optional[str] = None,
    workers: int = 1,
    supervisor=None,
) -> List[WorkloadProfile]:
    """Profile workloads under process-isolated supervision.

    The opt-in robust path for figure sweeps: each workload runs in its
    own spawned worker with a deadline, heartbeat watchdog, retry with
    backoff, and checkpoint-based crash recovery (see
    :mod:`repro.supervision`). The activity measurements are the same
    numbers :func:`profile_workload` produces in-process — the workers
    use identical seeding and the reference backend — so the resulting
    :class:`WorkloadProfile` rows are drop-in interchangeable.

    Pass a preconfigured ``supervisor`` to control retries, deadlines
    or metrics; a job that still fails after its retry budget raises
    :class:`~repro.errors.SupervisionError` naming the failure kind.
    """
    from repro.errors import SupervisionError
    from repro.supervision import JobSpec, Supervisor

    if supervisor is None:
        supervisor = Supervisor(workers=workers, seed=seed)
    jobs = [
        JobSpec(
            name=name,
            workload=name,
            backend="reference",
            steps=steps,
            scale=scale,
            seed=seed,
            dt=DT,
            solver=solver,
        )
        for name in names
    ]
    report = supervisor.run(jobs)
    profiles: List[WorkloadProfile] = []
    for job in report.jobs:
        if not job.completed or job.profile is None:
            worst = job.attempts[-1].error if job.attempts else ""
            raise SupervisionError(
                f"supervised profile of {job.name!r} failed "
                f"({job.failure_kind}) after {len(job.attempts)} "
                f"attempt(s): {worst}"
            )
        payload = dict(job.profile)
        payload["ops_per_update"] = dict(payload["ops_per_update"])
        profiles.append(WorkloadProfile(**payload))
    return profiles


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as a fixed-width text table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        )
    widths = [
        max(len(line[col]) for line in cells) for col in range(len(headers))
    ]
    lines = []
    for i, line in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
