"""Resilience: quantify spike-train drift under injected faults.

Section VI-A verifies the fault-free claim — fixed point reproduces the
float reference's spikes. This harness asks the complementary
engineering question the paper leaves open: how gracefully does each
backend degrade when the run is *not* fault-free? Three sustained fault
processes from :mod:`repro.reliability.faults` stress one workload:

* **bit-flip** — a single-event upset flips one random state bit every
  N steps (raw fixed-point words on hardware, IEEE-754 payloads on the
  float reference — the same physical fault in each representation);
* **spike-drop** — a lossy interconnect loses queued spike deliveries
  with probability p per step;
* **input-perturb** — Gaussian noise rides on every active input wire.

Each faulty run is compared against a clean run of the *same* backend
with identical seeds, so the drift measured is exactly the fault's
doing. Reported per scenario: Jaccard overlap of the (step, neuron)
spike sets, the relative change in total spike count, and how many
faults were actually applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.hooks import PhaseHook
from repro.hardware.backend import FlexonBackend, FoldedFlexonBackend
from repro.network.backends import Backend, ReferenceBackend
from repro.network.simulator import Simulator
from repro.reliability.faults import (
    BitFlipFault,
    InputPerturbFault,
    SpikeDropFault,
)
from repro.experiments.common import format_table
from repro.workloads import build_workload
from repro.workloads.builders import DT

#: The fault scenarios, in report order.
SCENARIOS = ("none", "bit-flip", "spike-drop", "input-perturb")

#: The backends stressed by default: the float reference and the
#: folded hardware array (baseline Flexon behaves identically to
#: folded by construction, so one hardware design suffices here).
BACKENDS = ("reference", "folded")


@dataclass(frozen=True)
class ResilienceRow:
    """One (backend, scenario) cell of the resilience matrix."""

    backend: str
    scenario: str
    clean_spikes: int
    faulty_spikes: int
    #: Jaccard overlap of (step, neuron) spike sets, clean vs faulty.
    overlap: float
    #: Faults actually applied (flips, drops, or perturbed entries).
    faults_applied: int

    @property
    def rate_deviation(self) -> float:
        """Relative change in total spike count (0.0 = unchanged)."""
        if self.clean_spikes == 0:
            return 0.0 if self.faulty_spikes == 0 else float("inf")
        return abs(self.faulty_spikes - self.clean_spikes) / self.clean_spikes


def _make_backend(kind: str) -> Backend:
    if kind == "reference":
        return ReferenceBackend("Euler")
    if kind == "flexon":
        return FlexonBackend(DT)
    if kind == "folded":
        return FoldedFlexonBackend(DT)
    raise ValueError(f"unknown backend kind {kind!r}")


def _make_faults(
    scenario: str,
    simulator: Simulator,
    population: str,
    seed: int,
    flip_every: int,
    p_drop: float,
    sigma: float,
) -> Tuple[Sequence[PhaseHook], Callable[[], int]]:
    """Hooks for one scenario plus a counter of faults applied."""
    if scenario == "none":
        return (), lambda: 0
    if scenario == "bit-flip":
        fault = BitFlipFault(
            simulator, population, every=flip_every, n_flips=1, seed=seed
        )
        return (fault,), lambda: len(fault.log)
    if scenario == "spike-drop":
        fault = SpikeDropFault(simulator, p_drop=p_drop, seed=seed)
        return (fault,), lambda: fault.dropped
    if scenario == "input-perturb":
        fault = InputPerturbFault(simulator, sigma=sigma, seed=seed)
        return (fault,), lambda: fault.perturbed
    raise ValueError(f"unknown scenario {scenario!r}")


def _spike_set(
    workload: str,
    backend_kind: str,
    scenario: str,
    scale: float,
    steps: int,
    seed: int,
    flip_every: int,
    p_drop: float,
    sigma: float,
) -> Tuple[set, int]:
    """Run one (backend, scenario) combination; return spikes + faults."""
    network = build_workload(workload, scale=scale, seed=seed)
    simulator = Simulator(
        network, _make_backend(backend_kind), dt=DT, seed=seed + 1
    )
    population = next(iter(network.populations))
    hooks, applied = _make_faults(
        scenario, simulator, population, seed, flip_every, p_drop, sigma
    )
    result = simulator.run(steps, hooks=hooks)
    spikes = set()
    for name in network.populations:
        spikes |= result.spikes.result(name).spike_pairs()
    return spikes, applied()


def run(
    workload: str = "Izhikevich",
    scale: float = 0.02,
    steps: int = 200,
    seed: int = 7,
    backends: Optional[Sequence[str]] = None,
    flip_every: int = 50,
    p_drop: float = 0.05,
    sigma: float = 0.1,
) -> List[ResilienceRow]:
    """Stress ``workload`` with every fault scenario on each backend.

    Identical construction and stimulus seeds across scenarios mean a
    faulty run and its clean counterpart see the same inputs until the
    fault itself changes the dynamics.
    """
    rows: List[ResilienceRow] = []
    for backend_kind in backends if backends is not None else BACKENDS:
        clean_set, _ = _spike_set(
            workload, backend_kind, "none",
            scale, steps, seed, flip_every, p_drop, sigma,
        )
        for scenario in SCENARIOS:
            if scenario == "none":
                faulty_set, applied = clean_set, 0
            else:
                faulty_set, applied = _spike_set(
                    workload, backend_kind, scenario,
                    scale, steps, seed, flip_every, p_drop, sigma,
                )
            union = clean_set | faulty_set
            overlap = (
                len(clean_set & faulty_set) / len(union) if union else 1.0
            )
            rows.append(
                ResilienceRow(
                    backend=backend_kind,
                    scenario=scenario,
                    clean_spikes=len(clean_set),
                    faulty_spikes=len(faulty_set),
                    overlap=overlap,
                    faults_applied=applied,
                )
            )
    return rows


def format_resilience(rows: List[ResilienceRow]) -> str:
    """Render the resilience matrix as a report table."""
    table = []
    for row in rows:
        table.append(
            (
                row.backend,
                row.scenario,
                row.clean_spikes,
                row.faulty_spikes,
                f"{100 * row.overlap:.1f}%",
                f"{100 * row.rate_deviation:.1f}%",
                row.faults_applied,
            )
        )
    return format_table(
        [
            "Backend",
            "Scenario",
            "Clean spikes",
            "Faulty spikes",
            "Spike overlap",
            "Rate deviation",
            "Faults applied",
        ],
        table,
    )
