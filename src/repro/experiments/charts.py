"""ASCII chart rendering for the figure-shaped experiment outputs.

The paper's Figures 3, 12 and 13 are bar charts; these helpers render
the same series as fixed-width text so terminal output and the files
under ``benchmarks/output/`` read like the figures, not just tables.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.errors import ConfigurationError

_FULL = "#"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart of label -> value.

    ``log_scale`` renders bar lengths on log10 (Figure 13 spans four
    orders of magnitude); values must then be positive.
    """
    if not values:
        raise ConfigurationError("bar_chart needs at least one value")
    if log_scale and any(v <= 0 for v in values.values()):
        raise ConfigurationError("log-scale bars need positive values")
    label_width = max(len(label) for label in values)
    if log_scale:
        logs = {k: math.log10(v) for k, v in values.items()}
        low = min(min(logs.values()), 0.0)
        high = max(logs.values())
        span = max(high - low, 1e-12)
        scaled = {k: (v - low) / span for k, v in logs.items()}
    else:
        high = max(max(values.values()), 1e-12)
        scaled = {k: max(v, 0.0) / high for k, v in values.items()}
    lines = []
    for label, value in values.items():
        bar = _FULL * max(1, int(round(scaled[label] * width)))
        rendered = f"{value:,.4g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar} {rendered}")
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 72,
    markers: str = "*o+x",
) -> str:
    """ASCII line plot of one or more equally-sampled series.

    Used to regenerate the paper's behavioural sketches (Figures 4-8):
    membrane/conductance trajectories over time. Series are resampled
    to ``width`` columns and share one y-axis.
    """
    if not series:
        raise ConfigurationError("line_plot needs at least one series")
    values: List[List[float]] = []
    for name, data in series.items():
        data = list(float(v) for v in data)
        if not data:
            raise ConfigurationError(f"series {name!r} is empty")
        values.append(data)
    lo = min(min(v) for v in values)
    hi = max(max(v) for v in values)
    span = max(hi - lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for index, data in enumerate(values):
        marker = markers[index % len(markers)]
        n = len(data)
        for col in range(width):
            sample = data[min(n - 1, col * n // width)]
            row = int(round((hi - sample) / span * (height - 1)))
            grid[row][col] = marker
    lines = [
        f"{hi:9.3g} +" + "".join(grid[0]),
    ]
    for row in grid[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    if height > 1:
        lines.append(f"{lo:9.3g} +" + "".join(grid[-1]))
    legend = ", ".join(
        f"{markers[i % len(markers)]} = {name}"
        for i, name in enumerate(series)
    )
    return "\n".join(lines) + f"\nlegend: {legend}"


def stacked_fraction_chart(
    rows: Sequence[Dict],
    parts: Sequence[str],
    symbols: Sequence[str],
    width: int = 50,
) -> str:
    """100 %-stacked bars, one per row (the Figure 3 presentation).

    Each row is a dict with a ``label`` plus a float per part name;
    part values are normalised to fractions of their sum.
    """
    if len(parts) != len(symbols):
        raise ConfigurationError("one symbol per part is required")
    if not rows:
        raise ConfigurationError("need at least one row")
    label_width = max(len(str(row["label"])) for row in rows)
    lines = [
        "legend: "
        + ", ".join(f"{s} = {p}" for p, s in zip(parts, symbols))
    ]
    for row in rows:
        total = sum(float(row[part]) for part in parts)
        if total <= 0:
            bar = " " * width
        else:
            widths = [
                int(round(width * float(row[part]) / total)) for part in parts
            ]
            # Fix rounding drift so every bar is exactly `width` wide.
            drift = width - sum(widths)
            widths[widths.index(max(widths))] += drift
            bar = "".join(s * w for s, w in zip(symbols, widths))
        lines.append(f"{str(row['label']).ljust(label_width)} |{bar}|")
    return "\n".join(lines)
