"""Figure 12: power and area of the data paths and both Flexons.

The paper's shapes this reproduction must preserve:

* the per-feature data paths are far cheaper than a complete neuron;
  AR (a counter) is the cheapest; EXI and RR the priciest;
* baseline Flexon needs up to ~5.84x the area and up to ~3.44x the
  power of spatially folded Flexon;
* folded Flexon is cheaper than some individual data paths (EXI, RR)
  because folding removes redundancy even within one path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.costmodel.synthesis import (
    DesignCost,
    synthesize_datapaths,
    synthesize_flexon_neuron,
    synthesize_folded_neuron,
)
from repro.experiments.common import format_table


@dataclass(frozen=True)
class Figure12Result:
    """All bars of Figure 12."""

    datapaths: Dict[str, DesignCost]
    flexon: DesignCost
    folded: DesignCost

    @property
    def area_ratio(self) -> float:
        """Flexon : folded area ratio (paper: up to 5.84x)."""
        return self.flexon.area_um2 / self.folded.area_um2

    @property
    def power_ratio(self) -> float:
        """Flexon : folded power ratio (paper: up to 3.44x)."""
        return self.flexon.power_w / self.folded.power_w


def run() -> Figure12Result:
    """Synthesize every Figure 12 bar."""
    return Figure12Result(
        datapaths=synthesize_datapaths(),
        flexon=synthesize_flexon_neuron(),
        folded=synthesize_folded_neuron(),
    )


def format_figure12(result: Figure12Result) -> str:
    """Render Figure 12 as a table plus the headline ratios."""
    rows: List[tuple] = []
    for name, cost in result.datapaths.items():
        rows.append((name, f"{cost.area_um2:,.0f}", f"{cost.power_w * 1e3:.2f}"))
    rows.append(
        (
            result.flexon.name,
            f"{result.flexon.area_um2:,.0f}",
            f"{result.flexon.power_w * 1e3:.2f}",
        )
    )
    rows.append(
        (
            result.folded.name,
            f"{result.folded.area_um2:,.0f}",
            f"{result.folded.power_w * 1e3:.2f}",
        )
    )
    table = format_table(["Design", "Area [um^2]", "Power [mW]"], rows)
    summary = (
        f"Flexon : folded ratios — area {result.area_ratio:.2f}x "
        f"(paper up to 5.84x), power {result.power_ratio:.2f}x "
        f"(paper up to 3.44x)"
    )
    return table + "\n\n" + summary
