"""Figures 4-8: the behavioural sketches of the five feature categories.

The paper illustrates each category with a small trajectory figure:

* **Figure 4** — exponential vs linear membrane decay;
* **Figure 5** — current-based vs conductance-based input accumulation;
* **Figure 6** — instant vs quadratic/exponential spike initiation;
* **Figure 7** — adaptation and subthreshold oscillation;
* **Figure 8** — absolute vs relative refractory.

This harness regenerates each as measured membrane traces from the
*fixed-point Flexon hardware model* (not the float reference), rendered
as ASCII line plots — so the figures double as behavioural evidence for
the hardware implementation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.charts import line_plot
from repro.features import Feature, FeatureSet
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models import ModelParameters
from repro.models.feature_model import FeatureModel

DT = 1e-4


def _trace(
    features: Sequence[Feature],
    steps: int,
    input_fn,
    v0: float = 0.0,
    variable: str = "v",
    **overrides,
) -> List[float]:
    """Membrane (or other state) trace of one hardware neuron."""
    model = FeatureModel(FeatureSet(features), ModelParameters(**overrides))
    compiled = FlexonCompiler().compile(model, DT)
    neuron = compiled.instantiate_flexon(1)
    neuron.state["v"][:] = fx_from_float(v0, FLEXON_FORMAT)
    n_types = model.parameters.n_synapse_types
    out = []
    for step in range(steps):
        weights = np.zeros((n_types, 1))
        weights[0, 0] = input_fn(step)
        raw = fx_from_float(weights * compiled.weight_scale, FLEXON_FORMAT)
        neuron.step(raw)
        out.append(float(neuron.float_state()[variable][0]))
    return out


def figure4_membrane_decay(steps: int = 600) -> Dict[str, List[float]]:
    """EXD's exponential curve vs LID's straight line to rest."""

    def silent(_step):
        return 0.0

    return {
        "EXD (exponential)": _trace(
            [Feature.EXD, Feature.CUB], steps, silent, v0=0.9, tau=20e-3
        ),
        "LID (linear)": _trace(
            [Feature.LID, Feature.CUB], steps, silent, v0=0.9, leak_rate=20.0
        ),
    }


def figure5_input_accumulation(steps: int = 500) -> Dict[str, List[float]]:
    """One input spike at t=0 under CUB / COBE / COBA kernels.

    CUB weights are currents (scaled by eps_m = 0.005 per step), so the
    current-based pulse is 100x larger to make the three kernels'
    membrane responses comparable in one plot.
    """

    def pulse(step):
        return 0.5 if step == 0 else 0.0

    def cub_pulse(step):
        return 100.0 if step == 0 else 0.0

    return {
        "CUB (instant)": _trace([Feature.EXD, Feature.CUB], steps, cub_pulse),
        "COBE (exponential)": _trace(
            [Feature.EXD, Feature.COBE], steps, pulse, tau_g=(5e-3, 10e-3)
        ),
        "COBA (alpha)": _trace(
            [Feature.EXD, Feature.COBA], steps, pulse, tau_g=(5e-3, 10e-3)
        ),
    }


def figure6_spike_initiation(steps: int = 500) -> Dict[str, List[float]]:
    """Trajectories from just above theta: instant fire vs self-drive."""

    def silent(_step):
        return 0.0

    return {
        "instant (LIF)": _trace(
            [Feature.EXD, Feature.CUB], steps, silent, v0=1.05
        ),
        "QDI (quadratic)": _trace(
            [Feature.EXD, Feature.COBE, Feature.QDI],
            steps, silent, v0=1.55, v_c=0.5, v_theta=2.0,
        ),
        "EXI (exponential)": _trace(
            [Feature.EXD, Feature.COBE, Feature.EXI],
            steps, silent, v0=1.42, delta_t=0.133, v_theta=2.0,
        ),
    }


def figure7_spike_triggered_current(
    steps: int = 6000,
) -> Dict[str, List[float]]:
    """ADT's stretching inter-spike intervals; SBT's oscillation level."""

    def drive(_step):
        return 2.0

    return {
        "plain LIF": _trace([Feature.EXD, Feature.CUB], steps, drive),
        "ADT (adaptation)": _trace(
            [Feature.EXD, Feature.CUB, Feature.ADT],
            steps, drive, tau_w=200e-3, b=0.01,
        ),
        "SBT (oscillation, no input)": _trace(
            [Feature.EXD, Feature.CUB, Feature.ADT, Feature.SBT],
            steps, lambda _step: 0.0, v0=0.9,
            a=-0.02, v_w=0.4, tau_w=200e-3,
        ),
    }


def figure8_refractory(steps: int = 2000) -> Dict[str, List[float]]:
    """Firing under strong drive: AR's hard cap vs RR's soft slowdown."""

    def drive(_step):
        return 4.0

    return {
        "no refractory": _trace([Feature.EXD, Feature.CUB], steps, drive),
        "AR (absolute)": _trace(
            [Feature.EXD, Feature.CUB, Feature.AR], steps, drive, t_ref=5e-3
        ),
        "RR (relative)": _trace(
            [Feature.EXD, Feature.CUB, Feature.RR],
            steps, drive,
            tau_r=10e-3, q_r=0.08, v_rr=-1.0, b=0.04, v_ar=-0.5,
            tau_w=100e-3,
        ),
    }


#: figure name -> (builder, caption)
ALL_FIGURES = {
    "figure4": (figure4_membrane_decay, "membrane decay"),
    "figure5": (figure5_input_accumulation, "input spike accumulation"),
    "figure6": (figure6_spike_initiation, "spike initiation"),
    "figure7": (figure7_spike_triggered_current, "spike-triggered current"),
    "figure8": (figure8_refractory, "refractory"),
}


def spike_count(trace: Sequence[float], threshold: float = 0.9) -> int:
    """Reset events in a membrane trace (fast drop from near-threshold)."""
    trace = np.asarray(trace)
    drops = (trace[:-1] > threshold) & (trace[1:] < trace[:-1] - 0.5)
    return int(drops.sum())


def run() -> Dict[str, Dict[str, List[float]]]:
    """Generate every Figure 4-8 trace set."""
    return {name: builder() for name, (builder, _) in ALL_FIGURES.items()}


def format_figures(traces: Dict[str, Dict[str, List[float]]]) -> str:
    """Render all five figures as ASCII line plots."""
    sections = []
    for name, series in traces.items():
        _, caption = ALL_FIGURES[name]
        sections.append(
            f"{name.capitalize()} — biologically common features for "
            f"{caption}\n" + line_plot(series)
        )
    return "\n\n".join(sections)
