"""The 12 biologically common features (paper Section IV-A, Table II).

Flexon's key idea is that diverse LIF-derived neuron models share a
small set of *biologically common features*; different combinations of
features express different neuron models (Table III). This package
defines the feature taxonomy, the validation rules for combining
features, and the catalog mapping published neuron models to their
feature combinations.
"""

from repro.features.base import (
    CATEGORY_OF,
    FEATURE_DESCRIPTIONS,
    Feature,
    FeatureCategory,
)
from repro.features.feature_set import FeatureSet
from repro.features.catalog import (
    MODEL_FEATURES,
    combination_matrix,
    feature_table,
    features_for_model,
    model_names,
    models_using,
)

__all__ = [
    "CATEGORY_OF",
    "FEATURE_DESCRIPTIONS",
    "Feature",
    "FeatureCategory",
    "FeatureSet",
    "MODEL_FEATURES",
    "combination_matrix",
    "feature_table",
    "features_for_model",
    "model_names",
    "models_using",
]
