"""Validated combinations of biologically common features.

A :class:`FeatureSet` is an immutable set of :class:`~repro.features.base.Feature`
members that has passed the combination rules of Section IV-A:

* exactly one membrane decay (EXD or LID);
* at most one input-accumulation kernel (CUB, COBE, or COBA);
* REV requires a conductance-based kernel (it "cannot be used w/ CUB");
* at most one spike initiation (QDI or EXI);
* SBT requires ADT (its update embeds the adaptation decay).

Feature sets are hashable and iterate in canonical Table II order, so
they can key caches (e.g. compiled microprograms) deterministically.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Union

from repro.errors import FeatureConflictError
from repro.features.base import CONFLICTS, REQUIRES, CATEGORY_OF, Feature, FeatureCategory

FeatureLike = Union[Feature, str]


def _coerce(feature: FeatureLike) -> Feature:
    if isinstance(feature, Feature):
        return feature
    try:
        return Feature[str(feature).upper()]
    except KeyError:
        raise FeatureConflictError(f"unknown feature {feature!r}") from None


class FeatureSet:
    """An immutable, validated set of biologically common features."""

    __slots__ = ("_features",)

    def __init__(self, features: Iterable[FeatureLike]):
        members = frozenset(_coerce(f) for f in features)
        self._validate(members)
        self._features = members

    @staticmethod
    def _validate(members: FrozenSet[Feature]) -> None:
        decays = members & {Feature.EXD, Feature.LID}
        if not decays:
            raise FeatureConflictError(
                "a feature set needs a membrane decay (EXD or LID)"
            )
        for pair in CONFLICTS:
            if pair <= members:
                a, b = sorted(pair, key=lambda f: f.value)
                raise FeatureConflictError(
                    f"features {a.value} and {b.value} are mutually exclusive"
                )
        for feature, prerequisites in REQUIRES.items():
            if feature in members and not members & set(prerequisites):
                names = " or ".join(p.value for p in prerequisites)
                raise FeatureConflictError(
                    f"feature {feature.value} requires {names}"
                )

    # -- set protocol ---------------------------------------------------

    def __contains__(self, feature: FeatureLike) -> bool:
        return _coerce(feature) in self._features

    def __iter__(self) -> Iterator[Feature]:
        # Canonical Table II ordering for deterministic iteration.
        return iter(sorted(self._features, key=list(Feature).index))

    def __len__(self) -> int:
        return len(self._features)

    def __eq__(self, other) -> bool:
        if isinstance(other, FeatureSet):
            return self._features == other._features
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._features)

    def __repr__(self) -> str:
        names = "+".join(f.value for f in self)
        return f"FeatureSet({names})"

    # -- queries ----------------------------------------------------------

    @property
    def features(self) -> FrozenSet[Feature]:
        """The underlying frozen set of features."""
        return self._features

    def with_features(self, *extra: FeatureLike) -> "FeatureSet":
        """A new validated set with ``extra`` features added."""
        return FeatureSet(list(self._features) + [_coerce(f) for f in extra])

    def without(self, *removed: FeatureLike) -> "FeatureSet":
        """A new validated set with the given features removed."""
        gone = {_coerce(f) for f in removed}
        return FeatureSet(self._features - gone)

    def in_category(self, category: FeatureCategory) -> FrozenSet[Feature]:
        """Features of this set belonging to the given Table II category."""
        return frozenset(
            f for f in self._features if CATEGORY_OF[f] is category
        )

    @property
    def membrane_decay(self) -> Feature:
        """The (single, mandatory) membrane-decay feature."""
        (decay,) = self.in_category(FeatureCategory.MEMBRANE_DECAY)
        return decay

    @property
    def accumulation_kernel(self) -> Feature:
        """The input-accumulation kernel; defaults to CUB when unset.

        Table III marks every model with exactly one of CUB/COBE/COBA,
        but a bare decay-only set behaves as current-based.
        """
        kernels = self._features & {Feature.CUB, Feature.COBE, Feature.COBA}
        if kernels:
            (kernel,) = kernels
            return kernel
        return Feature.CUB

    @property
    def uses_conductance(self) -> bool:
        """Whether the set carries per-synapse-type conductance state."""
        return bool(self._features & {Feature.COBE, Feature.COBA})

    @property
    def spike_initiation(self):
        """QDI, EXI, or None for instant (threshold) initiation."""
        initiations = self.in_category(FeatureCategory.SPIKE_INITIATION)
        if initiations:
            (initiation,) = initiations
            return initiation
        return None

    @property
    def has_adaptation_state(self) -> bool:
        """Whether a ``w`` state variable exists (ADT, SBT, or RR)."""
        return bool(self._features & {Feature.ADT, Feature.SBT, Feature.RR})

    def state_variables(self, n_synapse_types: int = 2):
        """Names of per-neuron state variables this combination needs.

        Always includes ``v``. Conductance kernels add ``g`` per synapse
        type; COBA additionally tracks ``y``; ADT/SBT/RR add ``w``; RR
        adds ``r``; AR adds the refractory counter ``cnt``.
        """
        names = ["v"]
        if self.uses_conductance:
            names.extend(f"g{i}" for i in range(n_synapse_types))
        if Feature.COBA in self._features:
            names.extend(f"y{i}" for i in range(n_synapse_types))
        if self.has_adaptation_state:
            names.append("w")
        if Feature.RR in self._features:
            names.append("r")
        if Feature.AR in self._features:
            names.append("cnt")
        return tuple(names)
