"""Model-to-feature catalog (paper Tables II and III).

``MODEL_FEATURES`` reproduces Table III exactly: the feature combination
that simulates each of the 11 published neuron models. The helper
functions render the tables and answer reverse queries (which models
use feature X), which the Table III experiment and tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import UnknownModelError
from repro.features.base import CATEGORY_OF, FEATURE_DESCRIPTIONS, Feature
from repro.features.feature_set import FeatureSet

#: Table III, row by row. Keys are the canonical model names used across
#: the package (``repro.models.registry`` resolves aliases).
MODEL_FEATURES: Dict[str, FeatureSet] = {
    # Linear Leak Integrate-and-Fire (TrueNorth-style)
    "LLIF": FeatureSet([Feature.LID, Feature.CUB, Feature.AR]),
    # LIF with step inputs (Smith 2014)
    "SLIF": FeatureSet([Feature.EXD, Feature.CUB, Feature.AR]),
    # Zeroth-order spike response model, decaying synapses
    "DSRM0": FeatureSet([Feature.EXD, Feature.COBE, Feature.AR]),
    # LIF with decaying synaptic conductances
    "DLIF": FeatureSet([Feature.EXD, Feature.COBE, Feature.REV, Feature.AR]),
    # Quadratic integrate-and-fire (Neurogrid's model)
    "QIF": FeatureSet(
        [Feature.EXD, Feature.COBE, Feature.REV, Feature.QDI, Feature.AR]
    ),
    # Exponential integrate-and-fire
    "EIF": FeatureSet(
        [Feature.EXD, Feature.COBE, Feature.REV, Feature.EXI, Feature.AR]
    ),
    # Izhikevich's simple model, expressed in features
    "Izhikevich": FeatureSet(
        [
            Feature.EXD,
            Feature.COBE,
            Feature.REV,
            Feature.QDI,
            Feature.ADT,
            Feature.AR,
        ]
    ),
    # Adaptive exponential integrate-and-fire
    "AdEx": FeatureSet(
        [
            Feature.EXD,
            Feature.COBE,
            Feature.REV,
            Feature.EXI,
            Feature.ADT,
            Feature.SBT,
            Feature.AR,
        ]
    ),
    # AdEx with alpha-function conductances
    "AdEx_COBA": FeatureSet(
        [
            Feature.EXD,
            Feature.COBA,
            Feature.REV,
            Feature.EXI,
            Feature.ADT,
            Feature.SBT,
            Feature.AR,
        ]
    ),
    # PyNN's IF_psc_alpha: current-like alpha synapses (no reversal)
    "IF_psc_alpha": FeatureSet([Feature.EXD, Feature.COBA, Feature.AR]),
    # PyNN's IF_cond_exp_gsfa_grr: conductance synapses + spike-frequency
    # adaptation + relative refractory
    "IF_cond_exp_gsfa_grr": FeatureSet(
        [Feature.EXD, Feature.COBE, Feature.REV, Feature.AR, Feature.RR]
    ),
}

#: The baseline model of the paper; LIF itself is CUB + EXD (no AR row
#: in Table III because LIF "does not emulate ... refractory").
MODEL_FEATURES["LIF"] = FeatureSet([Feature.EXD, Feature.CUB])


def model_names() -> List[str]:
    """Canonical names of all cataloged models, Table III order first."""
    return list(MODEL_FEATURES)


def features_for_model(name: str) -> FeatureSet:
    """The Table III feature combination for ``name``.

    Raises :class:`~repro.errors.UnknownModelError` for unknown models.
    """
    try:
        return MODEL_FEATURES[name]
    except KeyError:
        known = ", ".join(MODEL_FEATURES)
        raise UnknownModelError(
            f"no feature combination for model {name!r}; known: {known}"
        ) from None


def models_using(feature: Feature) -> List[str]:
    """Names of cataloged models whose combination includes ``feature``."""
    return [name for name, fs in MODEL_FEATURES.items() if feature in fs]


def feature_table() -> List[Tuple[str, str, str]]:
    """Rows of Table II: (category, long name, abbreviation)."""
    return [
        (CATEGORY_OF[f].value, FEATURE_DESCRIPTIONS[f], f.value)
        for f in Feature
    ]


def combination_matrix() -> List[Tuple[str, Dict[str, bool]]]:
    """Table III as a model -> {feature abbr -> enabled} matrix."""
    rows = []
    for name, fs in MODEL_FEATURES.items():
        if name == "LIF":
            continue  # LIF is the baseline, not a Table III row
        rows.append((name, {f.value: (f in fs) for f in Feature}))
    return rows
