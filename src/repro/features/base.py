"""Feature and category enums (paper Table II).

The 12 biologically common features fall into five categories according
to how they affect a neuron's behaviour: membrane decay, input spike
accumulation, spike initiation, spike-triggered current, and refractory.
"""

from __future__ import annotations

import enum


class FeatureCategory(enum.Enum):
    """The five behavioural categories of Table II."""

    MEMBRANE_DECAY = "Membrane Decay"
    INPUT_SPIKE_ACCUMULATION = "Input Spike Accumulation"
    SPIKE_INITIATION = "Spike Initiation"
    SPIKE_TRIGGERED_CURRENT = "Spike-Triggered Current"
    REFRACTORY = "Refractory"


class Feature(enum.Enum):
    """The 12 biologically common features, by paper abbreviation."""

    EXD = "EXD"  # exponential membrane decay
    LID = "LID"  # linear membrane decay
    CUB = "CUB"  # current-based input accumulation
    COBE = "COBE"  # conductance-based input, exponential kernel
    COBA = "COBA"  # conductance-based input, alpha-function kernel
    REV = "REV"  # reversal voltage
    QDI = "QDI"  # quadratic spike initiation
    EXI = "EXI"  # exponential spike initiation
    ADT = "ADT"  # adaptation (spike-triggered current)
    SBT = "SBT"  # subthreshold oscillation
    AR = "AR"  # absolute refractory
    RR = "RR"  # relative refractory

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Category of each feature (the rows of Table II).
CATEGORY_OF = {
    Feature.EXD: FeatureCategory.MEMBRANE_DECAY,
    Feature.LID: FeatureCategory.MEMBRANE_DECAY,
    Feature.CUB: FeatureCategory.INPUT_SPIKE_ACCUMULATION,
    Feature.COBE: FeatureCategory.INPUT_SPIKE_ACCUMULATION,
    Feature.COBA: FeatureCategory.INPUT_SPIKE_ACCUMULATION,
    Feature.REV: FeatureCategory.INPUT_SPIKE_ACCUMULATION,
    Feature.QDI: FeatureCategory.SPIKE_INITIATION,
    Feature.EXI: FeatureCategory.SPIKE_INITIATION,
    Feature.ADT: FeatureCategory.SPIKE_TRIGGERED_CURRENT,
    Feature.SBT: FeatureCategory.SPIKE_TRIGGERED_CURRENT,
    Feature.AR: FeatureCategory.REFRACTORY,
    Feature.RR: FeatureCategory.REFRACTORY,
}

#: Long names from Table II, used when rendering the feature table.
FEATURE_DESCRIPTIONS = {
    Feature.EXD: "Exponential membrane decay",
    Feature.LID: "Linear membrane decay",
    Feature.CUB: "Current-based input spike accumulation",
    Feature.COBE: "Conductance-based accumulation (exponential)",
    Feature.COBA: "Conductance-based accumulation (alpha function)",
    Feature.REV: "Reversal voltage",
    Feature.QDI: "Quadratic spike initiation",
    Feature.EXI: "Exponential spike initiation",
    Feature.ADT: "Adaptation (spike-triggered current)",
    Feature.SBT: "Subthreshold oscillation",
    Feature.AR: "Absolute refractory",
    Feature.RR: "Relative refractory",
}

#: Pairs of features that can never be enabled together. EXD/LID are the
#: two mutually exclusive membrane decays; CUB/COBE/COBA are the three
#: mutually exclusive accumulation kernels; QDI/EXI the two spike
#: initiations; and REV "cannot be used w/ CUB" (Equation 4).
CONFLICTS = frozenset(
    {
        frozenset({Feature.EXD, Feature.LID}),
        frozenset({Feature.CUB, Feature.COBE}),
        frozenset({Feature.CUB, Feature.COBA}),
        frozenset({Feature.COBE, Feature.COBA}),
        frozenset({Feature.QDI, Feature.EXI}),
        frozenset({Feature.REV, Feature.CUB}),
    }
)

#: Features that only make sense in the presence of another feature.
#: REV adjusts the contribution of a conductance, so it needs one; SBT's
#: update embeds the ADT decay (Equation 6), so SBT requires ADT.
REQUIRES = {
    Feature.REV: (Feature.COBE, Feature.COBA),
    Feature.SBT: (Feature.ADT,),
}
