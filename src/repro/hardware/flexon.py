"""Baseline Flexon: the single-cycle flexible digital neuron (Figure 10).

All per-feature data paths evaluate in parallel within one cycle;
multiplexers gate the conflicting ones (QDI vs EXI, EXD vs LID) and
latches switch unused paths off. This functional model evaluates the
enabled data paths in the canonical order shared with the folded
microcode (see :mod:`repro.hardware.microcode`), making the two designs
bit-identical — the property Section V-B's control signals must
guarantee.

State lives in raw fixed point. Between steps the membrane potential is
written back through the *truncate* optimisation (Section IV-B1): with
``theta = 1.0`` the integer portion is mostly redundant, so storage
narrows from the 32-bit datapath format to a 24-bit membrane format
(sign + 1 integer bit + 22 fraction bits; the paper quotes 22 bits
assuming non-negative potentials — we keep a sign bit because reversal
synapses legitimately pull below rest, and document the delta).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.features import Feature, FeatureSet
from repro.fixedpoint import MEMBRANE_FORMAT, FixedFormat, fx_add, fx_saturate
from repro.hardware import datapaths as dp
from repro.hardware.constants import NeuronConstants


class FlexonNeuron:
    """A vectorised array of baseline Flexon neurons (one model).

    ``step`` performs what one hardware cycle performs for each neuron:
    consume the accumulated (already weight-pre-scaled, quantised)
    input, update all state, and report fired neurons.
    """

    #: Cycles one neuron update occupies (the single-cycle design).
    CYCLES_PER_NEURON = 1

    def __init__(
        self,
        features: FeatureSet,
        constants: NeuronConstants,
        n: int,
        membrane_format: Optional[FixedFormat] = MEMBRANE_FORMAT,
    ):
        self.features = features
        self.constants = constants
        self.n = n
        self.membrane_format = membrane_format
        self.state: Dict[str, np.ndarray] = {
            "v": np.zeros(n, dtype=np.int64)
        }
        n_types = constants.n_synapse_types
        if features.uses_conductance:
            for i in range(n_types):
                self.state[f"g{i}"] = np.zeros(n, dtype=np.int64)
        if Feature.COBA in features:
            for i in range(n_types):
                self.state[f"y{i}"] = np.zeros(n, dtype=np.int64)
        if features.has_adaptation_state:
            self.state["w"] = np.zeros(n, dtype=np.int64)
        if Feature.RR in features:
            self.state["r"] = np.zeros(n, dtype=np.int64)
        if Feature.AR in features:
            self.state["cnt"] = np.zeros(n, dtype=np.int64)

    # -- one hardware cycle -----------------------------------------------

    def step(self, raw_inputs: np.ndarray) -> np.ndarray:
        """Advance every neuron one time step; return the fired mask.

        ``raw_inputs`` has shape ``(n_synapse_types, n)`` and carries
        the accumulated synaptic weights as raw fixed-point integers,
        already pre-scaled by the back-end's weight scale.
        """
        c = self.constants
        f = self.features
        fmt = c.fmt
        if raw_inputs.shape != (c.n_synapse_types, self.n):
            raise SimulationError(
                f"expected inputs of shape {(c.n_synapse_types, self.n)}, "
                f"got {raw_inputs.shape}"
            )
        v = self.state["v"]

        # AR input gating (Figure 9i)
        if Feature.AR in f:
            gated = dp.ArPath.gate(raw_inputs, self.state["cnt"])
        else:
            gated = raw_inputs

        # 1. membrane decay + CUB inputs
        has_cub = f.accumulation_kernel is Feature.CUB
        if Feature.EXD in f:
            acc = dp.CubExdLidPath.exd(v, c)
        else:
            acc = dp.CubExdLidPath.lid(v, c)
        if has_cub:
            for i in range(c.n_synapse_types):
                acc = fx_add(acc, dp.CubExdLidPath.cub(gated[i], c), fmt)

        # 2. conductance kernels (+ reversal coupling)
        use_rev = Feature.REV in f
        for i in range(c.n_synapse_types):
            if Feature.COBA in f:
                g_new, y_new = dp.CobaPath.update(
                    self.state[f"g{i}"], self.state[f"y{i}"], gated[i], i, c
                )
                self.state[f"g{i}"] = g_new
                self.state[f"y{i}"] = y_new
            elif Feature.COBE in f:
                g_new = dp.CobePath.update(self.state[f"g{i}"], gated[i], i, c)
                self.state[f"g{i}"] = g_new
            else:
                continue
            if use_rev:
                acc = fx_add(acc, dp.RevPath.contribution(v, g_new, i, c), fmt)
            else:
                acc = fx_add(acc, g_new, fmt)

        # 3. spike-triggered current
        if Feature.RR in f:
            w_new, r_new, contribution = dp.RrPath.update(
                self.state["w"], self.state["r"], v, c
            )
            self.state["w"] = w_new
            self.state["r"] = r_new
            acc = fx_add(acc, contribution, fmt)
        elif Feature.SBT in f:
            w_new = dp.SbtPath.update(self.state["w"], v, c)
            self.state["w"] = w_new
            acc = fx_add(acc, w_new, fmt)
        elif Feature.ADT in f:
            w_new = dp.AdtPath.decay(self.state["w"], c)
            self.state["w"] = w_new
            acc = fx_add(acc, w_new, fmt)

        # 4. spike initiation (EXI placed at the top of the adder tree,
        # the critical-path optimisation of Section IV-B1)
        if Feature.QDI in f:
            acc = fx_add(acc, dp.QdiPath.contribution(v, c), fmt)
        elif Feature.EXI in f:
            acc = fx_add(acc, dp.ExiPath.contribution(v, c), fmt)

        # 5. fire, reset, write back
        fired = acc > c.threshold
        v_next = np.where(fired, np.int64(c.v_reset), acc)
        if self.membrane_format is not None:
            v_next = fx_saturate(v_next, self.membrane_format)
        self.state["v"] = v_next
        # RR-mode jumps grow the reversal-coupled w/r conductances (see
        # the FeatureModel.step commentary); direct-coupled w shrinks.
        if Feature.RR in f:
            self.state["w"] = self.state["w"] + np.where(fired, c.b, 0)
            self.state["r"] = self.state["r"] + np.where(fired, c.q_r, 0)
        elif f.has_adaptation_state:
            self.state["w"] = self.state["w"] - np.where(fired, c.b, 0)
        if Feature.AR in f:
            cnt = dp.ArPath.tick(self.state["cnt"])
            cnt[fired] = c.cnt_max
            self.state["cnt"] = cnt
        return fired

    # -- host-side views -------------------------------------------------------

    def float_state(self) -> Dict[str, np.ndarray]:
        """The state converted to floats (for recording/validation)."""
        fmt = self.constants.fmt
        out = {}
        for name, raw in self.state.items():
            if name == "cnt":
                out[name] = raw.astype(np.float64)
            else:
                out[name] = raw.astype(np.float64) / fmt.scale
        return out

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Copies of every raw fixed-point state word (checkpointing)."""
        return {name: raw.copy() for name, raw in self.state.items()}

    def restore(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Overwrite the raw state from a :meth:`snapshot`."""
        if set(snapshot) != set(self.state):
            raise SimulationError(
                f"snapshot variables {sorted(snapshot)} do not match "
                f"neuron state {sorted(self.state)}"
            )
        for name, raw in snapshot.items():
            self.state[name] = np.asarray(raw, dtype=np.int64).copy()
