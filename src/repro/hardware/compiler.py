"""The Flexon back-end compiler (Section VII-B).

PyNN-style front-ends describe a network in terms of neuron models;
"implementing a code generator which translates a neuron model to the
control signals for spatially folded Flexon automatically integrates
spatially folded Flexon to the front-ends". This module is that code
generator: it maps a reference :class:`~repro.models.base.NeuronModel`
onto a :class:`CompiledModel` — feature configuration, quantised
constants, and the folded microprogram — or reports the model as
unsupported (HH and other custom models), in which case the hybrid
backend keeps it on the general-purpose processor (Section VII-A).

The Section VII-A background-current workaround is provided too:
:func:`with_background_current` appends one control signal executing
``v' += I_bg`` (the paper's ``b = 2, v_acc = 1`` trick, realised here
with a constant operand so no synapse type needs dedicating).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import CompilationError
from repro.features import FeatureSet
from repro.fixedpoint import FLEXON_FORMAT, MEMBRANE_FORMAT, FixedFormat, fx_from_float
from repro.hardware.constants import NeuronConstants, prepare_constants
from repro.hardware.control import AOperand, BOperand, ControlSignal, STATE_V
from repro.hardware.flexon import FlexonNeuron
from repro.hardware.folded import FoldedFlexonNeuron
from repro.hardware.microcode import Microprogram, assemble
from repro.models.base import NeuronModel
from repro.models.feature_model import FeatureModel


@dataclass(frozen=True)
class CompiledModel:
    """Everything a digital-neuron array needs to run one model."""

    model_name: str
    features: FeatureSet
    constants: NeuronConstants
    program: Microprogram
    membrane_format: Optional[FixedFormat]

    @property
    def weight_scale(self) -> float:
        """Host-side synaptic-weight pre-scale factor."""
        return self.constants.weight_scale

    @property
    def cycles_per_neuron_folded(self) -> int:
        """Folded-pipeline occupancy of one neuron update."""
        return self.program.cycles_per_neuron

    def instantiate_flexon(self, n: int) -> FlexonNeuron:
        """A baseline-Flexon functional model for ``n`` neurons."""
        return FlexonNeuron(
            self.features, self.constants, n, self.membrane_format
        )

    def instantiate_folded(self, n: int) -> FoldedFlexonNeuron:
        """A folded-Flexon functional model for ``n`` neurons."""
        return FoldedFlexonNeuron(self.program, n, self.membrane_format)


class FlexonCompiler:
    """Translates neuron models into Flexon configurations."""

    def __init__(
        self,
        fmt: FixedFormat = FLEXON_FORMAT,
        membrane_format: Optional[FixedFormat] = MEMBRANE_FORMAT,
    ):
        self.fmt = fmt
        self.membrane_format = membrane_format

    def supports(self, model: NeuronModel) -> bool:
        """Whether Flexon can natively simulate ``model``.

        Flexon supports exactly the models expressible as biologically
        common features — i.e. our :class:`FeatureModel` instances.
        Custom models (HH, native Izhikevich) need the hybrid path.
        """
        return isinstance(model, FeatureModel)

    def compile(self, model: NeuronModel, dt: float) -> CompiledModel:
        """Compile ``model`` for time step ``dt``.

        Raises :class:`~repro.errors.CompilationError` for unsupported
        models, naming the offloading workaround.
        """
        if not self.supports(model):
            raise CompilationError(
                f"model {model.name!r} is not expressible with the 12 "
                "biologically common features; simulate it on the "
                "general-purpose processor (Section VII-A) via "
                "HybridBackend"
            )
        assert isinstance(model, FeatureModel)
        constants = prepare_constants(
            model.parameters, model.features, dt, self.fmt
        )
        program = assemble(model.features, constants)
        return CompiledModel(
            model_name=model.name,
            features=model.features,
            constants=constants,
            program=program,
            membrane_format=self.membrane_format,
        )


def with_background_current(
    compiled: CompiledModel, i_bg: float
) -> CompiledModel:
    """Append the Section VII-A background-current control signal.

    Every step, ``v' += I_bg`` executes as one extra op — the
    workaround that emulates a constant input drive without any
    front-end support for it.
    """
    constants = compiled.constants
    raw = fx_from_float(i_bg * constants.weight_scale, constants.fmt)
    program = compiled.program
    mul_constants = list(program.mul_constants)
    add_constants = list(program.add_constants)
    if 0 not in mul_constants:
        mul_constants.append(0)
    if raw not in add_constants:
        add_constants.append(raw)
    signal = ControlSignal(
        a=AOperand.CONSTANT,
        ca=mul_constants.index(0),
        b=BOperand.CONSTANT,
        cb=add_constants.index(raw),
        s=STATE_V,
        v_acc=True,
        note="v' += I_bg (background current)",
    )
    new_program = Microprogram(
        features=program.features,
        constants=constants,
        signals=program.signals + (signal,),
        mul_constants=tuple(mul_constants),
        add_constants=tuple(add_constants),
    )
    return replace(compiled, program=new_program)
