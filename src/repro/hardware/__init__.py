"""Functional models of the Flexon digital neurons (Sections IV and V).

This package is the paper's contribution, modeled bit-accurately in
fixed point:

* :mod:`repro.hardware.constants` — shift & scale constant preparation
  (the host-side work a Flexon back-end performs, Section IV-B1).
* :mod:`repro.hardware.datapaths` — the ten per-feature data paths of
  Figure 9, each with its arithmetic-unit inventory for the cost model.
* :mod:`repro.hardware.flexon` — the baseline single-cycle Flexon
  (Figure 10): all data paths evaluated in parallel, conflicting
  features gated by MUXes.
* :mod:`repro.hardware.control` / :mod:`repro.hardware.microcode` — the
  control-signal encoding (Table IV) and the per-feature microprograms
  (Table V).
* :mod:`repro.hardware.folded` — spatially folded Flexon (Figure 11): a
  two-stage pipeline with one shared MUL/ADD/EXP executing the
  microprograms, cycle-counted.
* :mod:`repro.hardware.array` — neuron arrays (the synthesized 12-neuron
  Flexon and 72-neuron folded configurations of Table VI) with their
  latency models.
* :mod:`repro.hardware.compiler` — translates neuron models into Flexon
  configurations and folded microprograms (the back-end of
  Section VII-B), including the Section VII-A workarounds.
* :mod:`repro.hardware.backend` — network-simulator backends that run
  the neuron-computation phase on the hardware models.
"""

from repro.hardware.constants import NeuronConstants, prepare_constants
from repro.hardware.flexon import FlexonNeuron
from repro.hardware.control import ControlSignal, AOperand, BOperand
from repro.hardware.microcode import Microprogram, assemble
from repro.hardware.folded import FoldedFlexonNeuron
from repro.hardware.array import FlexonArray, FoldedFlexonArray
from repro.hardware.compiler import FlexonCompiler, CompiledModel
from repro.hardware.backend import (
    FlexonBackend,
    FoldedFlexonBackend,
    HardwareRuntime,
    HybridBackend,
)
from repro.hardware.event_driven import EventDrivenFlexonBackend

__all__ = [
    "AOperand",
    "BOperand",
    "CompiledModel",
    "ControlSignal",
    "EventDrivenFlexonBackend",
    "FlexonArray",
    "FlexonBackend",
    "FlexonCompiler",
    "FlexonNeuron",
    "FoldedFlexonArray",
    "FoldedFlexonBackend",
    "FoldedFlexonNeuron",
    "HardwareRuntime",
    "HybridBackend",
    "Microprogram",
    "NeuronConstants",
    "assemble",
    "prepare_constants",
]
