"""Network-simulator backends running neuron computation on Flexon.

These backends plug the fixed-point digital-neuron models into the
three-phase simulator: the synapse-calculation and stimulus phases stay
on the host (as in the paper's system model, where Flexon accelerates
neuron computation only), while each population's neuron updates run on
a :class:`~repro.hardware.flexon.FlexonNeuron` or
:class:`~repro.hardware.folded.FoldedFlexonNeuron` array model.

All of them execute through the engine layer's
:class:`~repro.engine.runtime.PopulationRuntime` seam:
:class:`HardwareRuntime` adapts one compiled array model — quantise the
accumulated input, step the fixed-point datapaths — so the hardware
backends share the exact per-step arithmetic they had before the
refactor (the flexon/folded bit-identity tests pin this down).

:class:`HybridBackend` implements the Section VII-A fallback: models
the compiler cannot express (e.g. Hodgkin-Huxley) stay on the
general-purpose software solver, while supported populations are
offloaded to Flexon — the paper's mixed AdEx + HH scenario.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.engine.runtime import PopulationRuntime, SolverRuntime
from repro.errors import CheckpointError, SimulationError
from repro.fixedpoint import SaturationStats, fx_from_float, observe_saturation
from repro.hardware.compiler import CompiledModel, FlexonCompiler
from repro.hardware.flexon import FlexonNeuron
from repro.models.base import State
from repro.network.backends import RuntimeBackend
from repro.network.population import Population
from repro.solvers import create_solver


class HardwareRuntime(PopulationRuntime):
    """One population on a digital-neuron array model.

    Owns the compiled model and the (baseline or folded) functional
    array; ``advance`` pre-scales and quantises the host-side float
    inputs exactly as the seed backends did, then runs one hardware
    step. The dt the constants were baked for is enforced per call.

    Every step runs under saturation accounting: any value the
    fixed-point datapaths clip (rather than represent) is counted per
    format in ``saturation_stats``, so a run can *report* how often the
    hardware silently saturated — the observable form of the paper's
    "chosen formats never saturate" claim.
    """

    def __init__(
        self, name: str, n: int, compiled: CompiledModel, dt: float, folded: bool
    ):
        super().__init__(name, n)
        self.compiled = compiled
        self.dt = dt
        self.folded = folded
        self.neuron = (
            compiled.instantiate_folded(n)
            if folded
            else compiled.instantiate_flexon(n)
        )
        #: Per-format clip counts accumulated across every step so far.
        self.saturation_stats = SaturationStats()

    def advance(self, inputs: np.ndarray, dt: float) -> np.ndarray:
        if abs(dt - self.dt) > 1e-15:
            raise SimulationError(
                f"backend compiled for dt={self.dt}, asked to step dt={dt}; "
                "constants are baked per time step"
            )
        with observe_saturation(self.saturation_stats):
            raw = fx_from_float(
                inputs * self.compiled.weight_scale, self.compiled.constants.fmt
            )
            return self._step_neuron(raw)

    def _step_neuron(self, raw: np.ndarray) -> np.ndarray:
        """One quantised hardware step (monitoring subclasses wrap this)."""
        return self.neuron.step(raw)

    def state(self) -> State:
        return self.neuron.float_state()

    def publish_metrics(self, metrics) -> None:
        super().publish_metrics(metrics)
        labels = {"population": self.name, "runtime": "hardware"}
        metrics.counter(
            "fixedpoint_saturation_checked_total",
            "Values screened by the saturation accounting.",
            labels,
        ).set_total(self.saturation_stats.checked)
        for fmt, clipped in self.saturation_stats.clipped.items():
            metrics.counter(
                "fixedpoint_saturation_clipped_total",
                "Values the fixed-point datapaths clipped.",
                {"population": self.name, "format": fmt.describe()},
            ).set_total(clipped)

    def snapshot(self) -> Dict[str, object]:
        return {"kind": "hardware", "neuron": self.neuron.snapshot()}

    def restore(self, payload: Dict[str, object]) -> None:
        try:
            self.neuron.restore(payload["neuron"])
        except SimulationError as error:
            raise CheckpointError(
                f"cannot restore {self.name!r}: {error}"
            ) from error

    @property
    def cycles_per_neuron(self) -> int:
        """Pipeline occupancy per logical neuron for one step."""
        if self.folded:
            return self.compiled.cycles_per_neuron_folded
        return FlexonNeuron.CYCLES_PER_NEURON


class _HardwareBackendBase(RuntimeBackend):
    """Shared compile/advance plumbing of the two hardware backends."""

    folded = False

    def __init__(self, dt: float = 1e-4, compiler: Optional[FlexonCompiler] = None):
        super().__init__()
        self.dt = dt
        self.compiler = compiler if compiler is not None else FlexonCompiler()
        self.compiled: Dict[str, CompiledModel] = {}

    def prepare(self, network) -> None:
        self.compiled = {}
        super().prepare(network)

    def build_runtime(self, population: Population) -> PopulationRuntime:
        compiled = self.compiler.compile(population.model, self.dt)
        self.compiled[population.name] = compiled
        return HardwareRuntime(
            population.name, population.n, compiled, self.dt, self.folded
        )

    def cycles_per_neuron(self, population: str) -> int:
        """Pipeline occupancy per logical neuron for one step."""
        runtime = self.runtime(population)
        assert isinstance(runtime, HardwareRuntime)
        return runtime.cycles_per_neuron


class FlexonBackend(_HardwareBackendBase):
    """Neuron computation on baseline (single-cycle) Flexon."""

    folded = False
    name = "flexon"


class FoldedFlexonBackend(_HardwareBackendBase):
    """Neuron computation on spatially folded Flexon."""

    folded = True
    name = "folded-flexon"


class HybridBackend(RuntimeBackend):
    """Flexon for supported models, reference solver for the rest.

    The Section VII-A scenario: "when an SNN consists of both the
    supported and the unsupported neuron models (e.g., a mixture of
    AdEx and HH), we can still accelerate SNN simulations by offloading
    the supported neuron models to Flexon." With the runtime seam the
    split is per population: supported ones get a
    :class:`HardwareRuntime`, the rest a software
    :class:`~repro.engine.runtime.SolverRuntime`.
    """

    name = "hybrid"

    def __init__(
        self,
        dt: float = 1e-4,
        solver: str = "Euler",
        folded: bool = True,
        compiler: Optional[FlexonCompiler] = None,
    ):
        super().__init__()
        self.dt = dt
        self.solver_name = solver
        self.folded = folded
        self.compiler = compiler if compiler is not None else FlexonCompiler()
        self.offloaded: Dict[str, bool] = {}

    def prepare(self, network) -> None:
        self.offloaded = {}
        super().prepare(network)

    def build_runtime(self, population: Population) -> PopulationRuntime:
        model = population.model
        if self.compiler.supports(model):
            self.offloaded[population.name] = True
            compiled = self.compiler.compile(model, self.dt)
            return HardwareRuntime(
                population.name, population.n, compiled, self.dt, self.folded
            )
        self.offloaded[population.name] = False
        return SolverRuntime(
            population.name,
            population.n,
            model,
            create_solver(self.solver_name),
        )

    def offloaded_fraction(self) -> float:
        """Fraction of neurons running on the digital-neuron array."""
        if self.network is None:
            return 0.0
        total = self.network.n_neurons
        if total == 0:
            return 0.0
        on_hw = sum(
            population.n
            for name, population in self.network.populations.items()
            if self.offloaded.get(name)
        )
        return on_hw / total
