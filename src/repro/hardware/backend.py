"""Network-simulator backends running neuron computation on Flexon.

These backends plug the fixed-point digital-neuron models into the
three-phase simulator: the synapse-calculation and stimulus phases stay
on the host (as in the paper's system model, where Flexon accelerates
neuron computation only), while each population's neuron updates run on
a :class:`~repro.hardware.flexon.FlexonNeuron` or
:class:`~repro.hardware.folded.FoldedFlexonNeuron` array model.

:class:`HybridBackend` implements the Section VII-A fallback: models
the compiler cannot express (e.g. Hodgkin-Huxley) stay on the
general-purpose reference backend, while supported populations are
offloaded to Flexon — the paper's mixed AdEx + HH scenario.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.errors import SimulationError
from repro.fixedpoint import fx_from_float
from repro.hardware.compiler import CompiledModel, FlexonCompiler
from repro.hardware.flexon import FlexonNeuron
from repro.hardware.folded import FoldedFlexonNeuron
from repro.models.base import State
from repro.network.backends import Backend
from repro.network.network import Network
from repro.solvers import Solver, create_solver

_HardwareNeuron = Union[FlexonNeuron, FoldedFlexonNeuron]


class _HardwareBackendBase(Backend):
    """Shared compile/advance plumbing of the two hardware backends."""

    folded = False

    def __init__(self, dt: float = 1e-4, compiler: Optional[FlexonCompiler] = None):
        super().__init__()
        self.dt = dt
        self.compiler = compiler if compiler is not None else FlexonCompiler()
        self.compiled: Dict[str, CompiledModel] = {}
        self._neurons: Dict[str, _HardwareNeuron] = {}

    def prepare(self, network: Network) -> None:
        self.network = network
        self.compiled = {}
        self._neurons = {}
        for name, population in network.populations.items():
            compiled = self.compiler.compile(population.model, self.dt)
            self.compiled[name] = compiled
            if self.folded:
                self._neurons[name] = compiled.instantiate_folded(population.n)
            else:
                self._neurons[name] = compiled.instantiate_flexon(population.n)

    def advance(self, population: str, inputs: np.ndarray, dt: float) -> np.ndarray:
        if population not in self._neurons:
            raise SimulationError(f"unknown population {population!r}")
        if abs(dt - self.dt) > 1e-15:
            raise SimulationError(
                f"backend compiled for dt={self.dt}, asked to step dt={dt}; "
                "constants are baked per time step"
            )
        compiled = self.compiled[population]
        raw = fx_from_float(
            inputs * compiled.weight_scale, compiled.constants.fmt
        )
        return self._neurons[population].step(raw)

    def state_of(self, population: str) -> State:
        if population not in self._neurons:
            raise SimulationError(f"unknown population {population!r}")
        return self._neurons[population].float_state()

    def cycles_per_neuron(self, population: str) -> int:
        """Pipeline occupancy per logical neuron for one step."""
        if self.folded:
            return self.compiled[population].cycles_per_neuron_folded
        return FlexonNeuron.CYCLES_PER_NEURON


class FlexonBackend(_HardwareBackendBase):
    """Neuron computation on baseline (single-cycle) Flexon."""

    folded = False
    name = "flexon"


class FoldedFlexonBackend(_HardwareBackendBase):
    """Neuron computation on spatially folded Flexon."""

    folded = True
    name = "folded-flexon"


class HybridBackend(Backend):
    """Flexon for supported models, reference solver for the rest.

    The Section VII-A scenario: "when an SNN consists of both the
    supported and the unsupported neuron models (e.g., a mixture of
    AdEx and HH), we can still accelerate SNN simulations by offloading
    the supported neuron models to Flexon."
    """

    name = "hybrid"

    def __init__(
        self,
        dt: float = 1e-4,
        solver: str = "Euler",
        folded: bool = True,
        compiler: Optional[FlexonCompiler] = None,
    ):
        super().__init__()
        self.dt = dt
        self.solver_name = solver
        self.compiler = compiler if compiler is not None else FlexonCompiler()
        self._hardware: _HardwareBackendBase = (
            FoldedFlexonBackend(dt, self.compiler)
            if folded
            else FlexonBackend(dt, self.compiler)
        )
        self._software_states: Dict[str, State] = {}
        self._software_solvers: Dict[str, Solver] = {}
        self.offloaded: Dict[str, bool] = {}

    def prepare(self, network: Network) -> None:
        self.network = network
        self._software_states = {}
        self._software_solvers = {}
        self.offloaded = {}
        hardware_network = Network(f"{network.name}-hw")
        for name, population in network.populations.items():
            if self.compiler.supports(population.model):
                hardware_network.add_population(
                    name, population.n, population.model
                )
                self.offloaded[name] = True
            else:
                self._software_states[name] = population.model.initial_state(
                    population.n
                )
                self._software_solvers[name] = create_solver(self.solver_name)
                self.offloaded[name] = False
        self._hardware.prepare(hardware_network)

    def advance(self, population: str, inputs: np.ndarray, dt: float) -> np.ndarray:
        if self.offloaded.get(population):
            return self._hardware.advance(population, inputs, dt)
        if population not in self._software_states:
            raise SimulationError(f"unknown population {population!r}")
        model = self.network.populations[population].model
        return self._software_solvers[population].advance(
            model, self._software_states[population], inputs, dt
        )

    def state_of(self, population: str) -> State:
        if self.offloaded.get(population):
            return self._hardware.state_of(population)
        return self._software_states[population]

    def offloaded_fraction(self) -> float:
        """Fraction of neurons running on the digital-neuron array."""
        if self.network is None:
            return 0.0
        total = self.network.n_neurons
        if total == 0:
            return 0.0
        on_hw = sum(
            population.n
            for name, population in self.network.populations.items()
            if self.offloaded.get(name)
        )
        return on_hw / total
