"""Event-driven execution analysis (the paper's LLIF rationale).

Section IV-A: LLIF "does not need multiplication units and is suitable
for event-driven execution, reducing hardware costs and energy
consumption." Event-driven execution skips the update of neurons whose
state cannot change: in fixed point, a neuron with every state variable
exactly at its rest value and no incoming weight this step is a *fixed
point* of the update — stepping it is the identity, so skipping it is
exact (unlike in floating point, where exponential decay only
asymptotically approaches rest, quantised decay reaches raw zero in
finitely many steps, so the skippable set is non-empty for every
Table III model, and immediately so for LLIF's clamped linear decay).

:class:`EventDrivenMonitor` wraps a hardware neuron, classifies each
neuron as active/idle per step, and accumulates the activity factor;
:func:`event_driven_power` scales a design's dynamic power by it. The
skip-is-identity invariant is verified by tests, so counting (rather
than literally skipping) is a sound energy model.
:class:`EventDrivenFlexonBackend` lifts the monitor to a full network
backend through the engine layer's ``PopulationRuntime`` seam, so
whole-workload activity factors can be measured with the ordinary
three-phase simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.features import Feature, FeatureSet
from repro.hardware.backend import HardwareRuntime, _HardwareBackendBase
from repro.hardware.flexon import FlexonNeuron
from repro.hardware.folded import FoldedFlexonNeuron

_HardwareNeuron = Union[FlexonNeuron, FoldedFlexonNeuron]


def supports_event_driven(features: FeatureSet) -> bool:
    """Whether a zero-state, zero-input neuron is a true fixed point.

    EXI contributes ``delta_T * eps_m * exp(-theta/delta_T)`` even at
    rest, and SBT drives ``w`` toward tracking ``v - v_w`` — both are
    nonzero at the all-zero state, so models carrying them always
    compute (the biological point of those features is precisely
    activity at rest). Every other combination — notably LLIF, the
    model the paper calls "suitable for event-driven execution" — has
    the all-zero state as an exact fixed point.
    """
    return not features.features & {Feature.EXI, Feature.SBT}


def _features_of(neuron: _HardwareNeuron) -> FeatureSet:
    if isinstance(neuron, FlexonNeuron):
        return neuron.features
    return neuron.program.features


def idle_mask(
    neuron: _HardwareNeuron,
    raw_inputs: np.ndarray,
    known_silent: bool = False,
) -> np.ndarray:
    """Neurons whose update this step is provably the identity.

    A neuron is idle when its model supports event-driven execution,
    it receives no input weight this step, and every architectural
    state variable sits exactly at its reset/rest value (raw zero; the
    refractory counter at zero). ``known_silent`` asserts that the
    routing layer delivered zero events into this step's input bucket,
    so the dense input scan can be skipped outright (a delivered weight
    of exactly zero only ever *widens* the idle set, so skipping the
    scan is conservative in the safe direction).
    """
    if not supports_event_driven(_features_of(neuron)):
        return np.zeros(raw_inputs.shape[1], dtype=bool)
    if known_silent:
        idle = np.ones(raw_inputs.shape[1], dtype=bool)
    else:
        idle = ~raw_inputs.any(axis=0)
    if isinstance(neuron, FlexonNeuron):
        for name, values in neuron.state.items():
            idle &= values == 0
    else:
        idle &= ~neuron.regs.any(axis=0)
        if neuron.cnt is not None:
            idle &= neuron.cnt == 0
    return idle


@dataclass
class EventDrivenMonitor:
    """Wraps a hardware neuron and tracks the activity factor."""

    neuron: _HardwareNeuron
    active_updates: int = 0
    total_updates: int = 0
    _last_idle: np.ndarray = field(default=None, repr=False)

    def step(
        self, raw_inputs: np.ndarray, known_silent: bool = False
    ) -> np.ndarray:
        """Step the wrapped neuron, recording how many were active."""
        idle = idle_mask(self.neuron, raw_inputs, known_silent=known_silent)
        self._last_idle = idle
        self.active_updates += int((~idle).sum())
        self.total_updates += idle.size
        return self.neuron.step(raw_inputs)

    @property
    def activity_factor(self) -> float:
        """Fraction of neuron updates that actually needed computing."""
        if self.total_updates == 0:
            return 1.0
        return self.active_updates / self.total_updates

    @property
    def last_idle_mask(self) -> np.ndarray:
        """The idle classification of the most recent step."""
        return self._last_idle


class EventDrivenRuntime(HardwareRuntime):
    """A hardware runtime whose every step is activity-classified.

    Identical numerics to :class:`HardwareRuntime` (the monitor only
    observes), with the population's activity factor accumulated across
    the run — the quantity :func:`event_driven_power` consumes.
    """

    def __init__(self, name, n, compiled, dt, folded):
        super().__init__(name, n, compiled, dt, folded)
        self.monitor = EventDrivenMonitor(self.neuron)
        self._ring = None

    def bind_ring(self, ring) -> None:
        # The routing seam: with the population's delay ring in hand,
        # a step whose input bucket carries zero delivered events skips
        # the dense input scan during idle classification. Faults that
        # zero delivered weights leave counts > 0, so the short-circuit
        # only ever fires when the bucket is provably untouched.
        self._ring = ring

    def _step_neuron(self, raw: np.ndarray) -> np.ndarray:
        silent = self._ring is not None and self._ring.current_events() == 0
        return self.monitor.step(raw, known_silent=silent)

    @property
    def activity_factor(self) -> float:
        return self.monitor.activity_factor

    def publish_metrics(self, metrics) -> None:
        super().publish_metrics(metrics)
        labels = {"population": self.name}
        metrics.gauge(
            "event_driven_activity_factor",
            "Fraction of neuron updates that actually needed computing.",
            labels,
        ).set(self.monitor.activity_factor)
        metrics.counter(
            "event_driven_active_updates_total",
            "Neuron updates classified as active (not skippable).",
            labels,
        ).set_total(self.monitor.active_updates)
        metrics.counter(
            "event_driven_total_updates_total",
            "Neuron updates classified by the event-driven monitor.",
            labels,
        ).set_total(self.monitor.total_updates)


class EventDrivenFlexonBackend(_HardwareBackendBase):
    """Flexon backend that tracks per-population activity factors.

    Spike trains are bit-identical to :class:`~repro.hardware.backend.
    FlexonBackend` / :class:`~repro.hardware.backend.FoldedFlexonBackend`
    (classification is observation-only); on top it reports which
    fraction of neuron updates actually needed computing — the
    event-driven energy model of the paper's LLIF discussion.
    """

    name = "event-driven-flexon"

    def __init__(self, dt: float = 1e-4, folded: bool = False, compiler=None):
        super().__init__(dt, compiler)
        self.folded = folded

    def build_runtime(self, population):
        compiled = self.compiler.compile(population.model, self.dt)
        self.compiled[population.name] = compiled
        return EventDrivenRuntime(
            population.name, population.n, compiled, self.dt, self.folded
        )

    def activity_factor(self, population: str) -> float:
        """Fraction of one population's updates that were active."""
        runtime = self.runtime(population)
        assert isinstance(runtime, EventDrivenRuntime)
        return runtime.activity_factor

    def activity_factors(self) -> dict:
        """Activity factor of every prepared population."""
        return {
            name: runtime.activity_factor
            for name, runtime in self.runtimes.items()
        }


def event_driven_power(
    total_power_w: float,
    static_fraction: float,
    activity_factor: float,
) -> float:
    """Array power under event-driven scheduling.

    Static power (leakage plus always-on control/SRAM retention) is
    unaffected; dynamic power scales with the activity factor.
    """
    static = total_power_w * static_fraction
    dynamic = total_power_w - static
    return static + dynamic * activity_factor
