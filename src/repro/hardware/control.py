"""Control-signal encoding for spatially folded Flexon (paper Table IV).

One control signal describes one pass through the shared MUL-ADD(-EXP)
pipeline::

    out = maybe_exp( MUL_operand * state[s] + ADD_operand )

* the MUL operand is a constant (``a = 0``, selected by ``ca``) or the
  ``tmp`` register (``a = 1``);
* the ADD operand is zero, a constant (selected by ``cb``), the
  accumulated input of synapse type ``type``, or ``tmp`` (``b`` =
  0/1/2/3);
* ``exp`` routes the MUL-ADD output through the exponential unit;
* ``s_wr`` writes the result back to state variable ``s``;
* ``v_acc`` accumulates the result into the membrane accumulator v'.

The result is always latched into ``tmp`` (the paper's Table V uses the
previous op's output via ``tmp`` without an explicit write-enable, so
the latch is implicit).

One documented extension: ``b = BOperand.LEAK`` feeds the ADD port with
``-min(V_leak, max(state[s], 0))`` — the clamped linear leak. The
paper's LID row has no clamp because its evaluation never drives LID
below rest; our workloads do, so the clamp comparator/MUX pair of the
CUB/EXD/LID data path (Figure 9a) is exposed as an operand mode here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MicrocodeError


class AOperand(enum.IntEnum):
    """MUL operand source (Table IV signal ``a``)."""

    CONSTANT = 0
    TMP = 1


class BOperand(enum.IntEnum):
    """ADD operand source (Table IV signal ``b``), plus the LEAK mode."""

    ZERO = 0
    CONSTANT = 1
    INPUT = 2
    TMP = 3
    LEAK = 4  # documented extension: clamped -V_leak


#: State-variable register file indices (signal ``s``, 0-15). The
#: layout fixes v at 0 and leaves room for four synapse types.
STATE_V = 0
STATE_G = {i: 1 + i for i in range(4)}  # g0..g3 -> 1..4
STATE_Y = {i: 5 + i for i in range(4)}  # y0..y3 -> 5..8
STATE_W = 9
STATE_R = 10
N_STATE_REGISTERS = 16

STATE_NAMES = {STATE_V: "v", STATE_W: "w", STATE_R: "r"}
STATE_NAMES.update({idx: f"g{i}" for i, idx in STATE_G.items()})
STATE_NAMES.update({idx: f"y{i}" for i, idx in STATE_Y.items()})


@dataclass(frozen=True)
class ControlSignal:
    """One Table IV control word."""

    a: AOperand = AOperand.CONSTANT
    ca: int = 0  #: MUL constant index (when a == CONSTANT)
    b: BOperand = BOperand.ZERO
    cb: int = 0  #: ADD constant index (when b == CONSTANT)
    syn_type: int = 0  #: input row select (when b == INPUT)
    s: int = STATE_V  #: state register for the MUL port
    exp: bool = False  #: exponentiate the MUL-ADD output
    s_wr: bool = False  #: write result to state register ``s``
    v_acc: bool = False  #: accumulate result into v'
    note: str = ""  #: human-readable description (Table V's column)

    def __post_init__(self) -> None:
        if not 0 <= self.ca < 16:
            raise MicrocodeError(f"ca out of range 0..15: {self.ca}")
        if not 0 <= self.cb < 8:
            raise MicrocodeError(f"cb out of range 0..7: {self.cb}")
        if not 0 <= self.syn_type < 4:
            raise MicrocodeError(f"syn_type out of range 0..3: {self.syn_type}")
        if not 0 <= self.s < N_STATE_REGISTERS:
            raise MicrocodeError(f"s out of range 0..15: {self.s}")

    def describe(self) -> str:
        """Render the op roughly in Table V's operation notation."""
        mul = f"c[{self.ca}]" if self.a == AOperand.CONSTANT else "tmp"
        state = STATE_NAMES.get(self.s, f"s{self.s}")
        adds = {
            BOperand.ZERO: "0",
            BOperand.CONSTANT: f"k[{self.cb}]",
            BOperand.INPUT: f"I[{self.syn_type}]",
            BOperand.TMP: "tmp",
            BOperand.LEAK: "-leak",
        }
        expr = f"{mul}*{state} + {adds[self.b]}"
        if self.exp:
            expr = f"exp({expr})"
        targets = ["tmp"]
        if self.s_wr:
            targets.append(state)
        if self.v_acc:
            targets.append("v'")
        return f"{', '.join(targets)} <- {expr}"
