"""Digital-neuron array timing models (the Table VI configurations).

The paper evaluates two synthesized arrays:

* a **12-neuron Flexon array** at 250 MHz — 12 matches the core count
  of the baseline Xeon; each physical neuron updates one logical neuron
  per cycle (single-cycle design);
* a **72-neuron spatially folded Flexon array** at 500 MHz — 72 chosen
  because folded Flexon's footprint is ~5.4x smaller; each logical
  neuron occupies the pipeline for ``signals + 1`` cycles.

Arrays time-multiplex the (much larger) logical neuron population of an
SNN across their physical neurons, exactly like TrueNorth-style
neurosynaptic cores. This module models the resulting per-time-step
neuron-computation latency; energy comes from the cost model
(:mod:`repro.costmodel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Paper clock frequencies after the 20% synthesis slack margin.
FLEXON_CLOCK_HZ = 250e6
FOLDED_CLOCK_HZ = 500e6


@dataclass(frozen=True)
class NeuronArray:
    """A bank of identical physical digital neurons."""

    n_physical: int
    clock_hz: float
    #: Extra cycles per logical neuron for state fetch/write-back
    #: (SRAM round trip); the single-cycle Flexon overlaps these.
    overhead_cycles: int = 0
    #: Pipeline depth (fill cost paid once per batch).
    pipeline_depth: int = 1
    #: Fixed per-time-step overhead [s]: array sequencing plus the
    #: host-side hand-off of accumulated weights and fired spikes.
    per_step_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.n_physical <= 0:
            raise ConfigurationError("array needs at least one neuron")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")

    def step_cycles(self, n_logical: int, cycles_per_neuron: int = 1) -> int:
        """Cycles to update ``n_logical`` neurons for one time step."""
        if n_logical < 0:
            raise ConfigurationError("n_logical must be non-negative")
        if n_logical == 0:
            return 0
        per_neuron = cycles_per_neuron + self.overhead_cycles
        batches = math.ceil(n_logical / self.n_physical)
        return batches * per_neuron + (self.pipeline_depth - 1)

    def step_latency_seconds(
        self, n_logical: int, cycles_per_neuron: int = 1
    ) -> float:
        """Neuron-computation latency of one time step, in seconds."""
        cycles = self.step_cycles(n_logical, cycles_per_neuron)
        return cycles / self.clock_hz + self.per_step_overhead_s


class FlexonArray(NeuronArray):
    """The 12-neuron baseline Flexon array (single-cycle updates)."""

    def __init__(self, n_physical: int = 12, clock_hz: float = FLEXON_CLOCK_HZ):
        super().__init__(
            n_physical=n_physical,
            clock_hz=clock_hz,
            overhead_cycles=0,
            pipeline_depth=1,
            per_step_overhead_s=0.5e-6,
        )

    def step_cycles(self, n_logical: int, cycles_per_neuron: int = 1) -> int:
        # Single-cycle design: the microprogram length is irrelevant —
        # every enabled data path evaluates in the same cycle.
        return super().step_cycles(n_logical, cycles_per_neuron=1)


class FoldedFlexonArray(NeuronArray):
    """The 72-neuron spatially folded array (2-stage pipeline).

    Pass the compiled microprogram's *signal count* as
    ``cycles_per_neuron``: while one neuron occupies the second stage
    (fire/write-back), the next neuron's control signals already issue
    into the first stage, so the initiation interval equals the signal
    count and only the last neuron pays the extra pipeline-drain cycle.
    (A single neuron's end-to-end latency is ``signals + 1`` cycles —
    e.g. QDI's two signals take three cycles, Section V-B.)
    """

    def __init__(self, n_physical: int = 72, clock_hz: float = FOLDED_CLOCK_HZ):
        super().__init__(
            n_physical=n_physical,
            clock_hz=clock_hz,
            overhead_cycles=0,
            pipeline_depth=2,
            per_step_overhead_s=0.5e-6,
        )
