"""Microprogram assembly for spatially folded Flexon (paper Table V).

The assembler turns a feature combination plus prepared constants into
the sequence of control signals that folded Flexon executes each time
step. The op ordering is canonical and shared with the baseline
Flexon's data-path evaluation order, which is what makes the two
implementations bit-identical:

1. membrane decay (EXD or LID), with CUB inputs riding the ADD port;
2. per synapse type: conductance update (COBE or COBA), then the REV
   reversal coupling when enabled;
3. spike-triggered current (RR, or SBT, or ADT);
4. spike initiation (QDI or EXI) — last, because the Table V EXI
   sequence clobbers the ``v`` register with the exp-unit output
   (harmless only once nothing later reads the true membrane value).

Cycle accounting follows Section V-B: a model needing ``k`` control
signals occupies the shared arithmetic units for ``k`` cycles per
neuron, plus one write-back cycle in the second pipeline stage; e.g.
LIF (CUB + EXD) is a single signal and QDI adds a structural hazard on
the single multiplier, hence its extra cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import MicrocodeError
from repro.features import Feature, FeatureSet
from repro.hardware.constants import NeuronConstants
from repro.hardware.control import (
    AOperand,
    BOperand,
    ControlSignal,
    STATE_G,
    STATE_R,
    STATE_V,
    STATE_W,
    STATE_Y,
)

#: Hardware limits from Table IV.
MAX_MUL_CONSTANTS = 16
MAX_ADD_CONSTANTS = 8


@dataclass
class Microprogram:
    """An assembled per-model program plus its constant buffers."""

    features: FeatureSet
    constants: NeuronConstants
    signals: Tuple[ControlSignal, ...]
    mul_constants: Tuple[int, ...]  #: raw values indexed by ``ca``
    add_constants: Tuple[int, ...]  #: raw values indexed by ``cb``

    @property
    def n_signals(self) -> int:
        """Control signals per neuron per time step."""
        return len(self.signals)

    @property
    def cycles_per_neuron(self) -> int:
        """Pipeline occupancy per neuron: signals + 1 write-back cycle."""
        return self.n_signals + 1

    def listing(self) -> str:
        """Human-readable Table V-style listing."""
        lines = [f"; {self.features!r}: {self.n_signals} signals"]
        lines.extend(
            f"  {i}: {signal.describe()}"
            for i, signal in enumerate(self.signals)
        )
        return "\n".join(lines)


class _ConstantPool:
    """Deduplicating allocator for a constant buffer."""

    def __init__(self, limit: int, kind: str):
        self.limit = limit
        self.kind = kind
        self.values: List[int] = []
        self._index: Dict[int, int] = {}

    def alloc(self, raw: int) -> int:
        if raw in self._index:
            return self._index[raw]
        if len(self.values) >= self.limit:
            raise MicrocodeError(
                f"{self.kind} constant buffer exceeded ({self.limit} entries)"
            )
        index = len(self.values)
        self.values.append(raw)
        self._index[raw] = index
        return index


def assemble(features: FeatureSet, constants: NeuronConstants) -> Microprogram:
    """Assemble the Table V microprogram for a feature combination."""
    c = constants
    muls = _ConstantPool(MAX_MUL_CONSTANTS, "MUL")
    adds = _ConstantPool(MAX_ADD_CONSTANTS, "ADD")
    signals: List[ControlSignal] = []
    n_types = c.n_synapse_types
    zero = 0
    has_cub = features.accumulation_kernel is Feature.CUB

    # -- 1. membrane decay (+ CUB input rides the ADD port) ---------------
    if Feature.EXD in features:
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_m_c),
                b=BOperand.INPUT if has_cub else BOperand.ZERO,
                syn_type=0,
                s=STATE_V,
                v_acc=True,
                note="v' += eps_m' * v" + (" + I" if has_cub else ""),
            )
        )
    else:  # LID
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.one),
                b=BOperand.INPUT if has_cub else BOperand.ZERO,
                syn_type=0,
                s=STATE_V,
                v_acc=True,
                note="v' += v" + (" + I" if has_cub else ""),
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(zero),
                b=BOperand.LEAK,
                s=STATE_V,
                v_acc=True,
                note="v' += -min(V_leak, max(v, 0))",
            )
        )
    if has_cub:
        for i in range(1, n_types):
            signals.append(
                ControlSignal(
                    a=AOperand.CONSTANT,
                    ca=muls.alloc(zero),
                    b=BOperand.INPUT,
                    syn_type=i,
                    s=STATE_V,
                    v_acc=True,
                    note=f"v' += I[{i}]",
                )
            )

    # -- 2. conductance kernels and reversal coupling ----------------------
    use_rev = Feature.REV in features
    for i in range(n_types):
        if Feature.COBA in features:
            signals.append(
                ControlSignal(
                    a=AOperand.CONSTANT,
                    ca=muls.alloc(c.eps_g_c[i]),
                    b=BOperand.INPUT,
                    syn_type=i,
                    s=STATE_Y[i],
                    s_wr=True,
                    note=f"y{i} = eps_g' * y{i} + I[{i}]",
                )
            )
            signals.append(
                ControlSignal(
                    a=AOperand.CONSTANT,
                    ca=muls.alloc(c.e_eps_g[i]),
                    b=BOperand.ZERO,
                    s=STATE_Y[i],
                    note=f"tmp = (e*eps_g) * y{i}",
                )
            )
            signals.append(
                ControlSignal(
                    a=AOperand.CONSTANT,
                    ca=muls.alloc(c.eps_g_c[i]),
                    b=BOperand.TMP,
                    s=STATE_G[i],
                    s_wr=True,
                    v_acc=not use_rev,
                    note=f"g{i} = eps_g' * g{i} + tmp"
                    + ("" if use_rev else "; v' += g"),
                )
            )
        elif Feature.COBE in features:
            signals.append(
                ControlSignal(
                    a=AOperand.CONSTANT,
                    ca=muls.alloc(c.eps_g_c[i]),
                    b=BOperand.INPUT,
                    syn_type=i,
                    s=STATE_G[i],
                    s_wr=True,
                    v_acc=not use_rev,
                    note=f"g{i} = eps_g' * g{i} + I[{i}]"
                    + ("" if use_rev else "; v' += g"),
                )
            )
        if use_rev and features.uses_conductance:
            signals.append(
                ControlSignal(
                    a=AOperand.CONSTANT,
                    ca=muls.alloc(c.neg_one),
                    b=BOperand.CONSTANT,
                    cb=adds.alloc(c.v_g[i]),
                    s=STATE_V,
                    note=f"tmp = -v + v_g[{i}]",
                )
            )
            signals.append(
                ControlSignal(
                    a=AOperand.TMP,
                    b=BOperand.ZERO,
                    s=STATE_G[i],
                    v_acc=True,
                    note=f"v' += tmp * g{i}",
                )
            )

    # -- 3. spike-triggered current -----------------------------------------
    if Feature.RR in features:
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_w_c),
                s=STATE_W,
                s_wr=True,
                note="w = eps_w' * w",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.neg_one),
                b=BOperand.CONSTANT,
                cb=adds.alloc(c.v_ar),
                s=STATE_V,
                note="tmp = -v + v_ar",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.TMP, s=STATE_W, v_acc=True, note="v' += tmp * w"
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_r_c),
                s=STATE_R,
                s_wr=True,
                note="r = eps_r' * r",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.neg_one),
                b=BOperand.CONSTANT,
                cb=adds.alloc(c.v_rr),
                s=STATE_V,
                note="tmp = -v + v_rr",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.TMP, s=STATE_R, v_acc=True, note="v' += tmp * r"
            )
        )
    elif Feature.SBT in features:
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_m_a),
                b=BOperand.CONSTANT,
                cb=adds.alloc(c.neg_eps_m_a_v_w),
                s=STATE_V,
                note="tmp = (eps_m a) * v - eps_m a v_w",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_w_c),
                b=BOperand.TMP,
                s=STATE_W,
                s_wr=True,
                v_acc=True,
                note="w = eps_w' * w + tmp; v' += w",
            )
        )
    elif Feature.ADT in features:
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_w_c),
                s=STATE_W,
                s_wr=True,
                v_acc=True,
                note="w = eps_w' * w; v' += w",
            )
        )

    # -- 4. spike initiation --------------------------------------------------
    if Feature.QDI in features:
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.eps_m),
                b=BOperand.CONSTANT,
                cb=adds.alloc(c.neg_eps_m_v_c),
                s=STATE_V,
                note="tmp = eps_m * v - eps_m v_c",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.TMP, s=STATE_V, v_acc=True, note="v' += tmp * v"
            )
        )
    elif Feature.EXI in features:
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.inv_delta_t),
                b=BOperand.CONSTANT,
                cb=adds.alloc(c.neg_theta_inv_delta_t),
                s=STATE_V,
                exp=True,
                s_wr=True,
                note="v = exp(v/delta_T - theta/delta_T)",
            )
        )
        signals.append(
            ControlSignal(
                a=AOperand.CONSTANT,
                ca=muls.alloc(c.delta_t_eps_m),
                s=STATE_V,
                v_acc=True,
                note="v' += (delta_T eps_m) * v",
            )
        )

    return Microprogram(
        features=features,
        constants=c,
        signals=tuple(signals),
        mul_constants=tuple(muls.values),
        add_constants=tuple(adds.values),
    )
