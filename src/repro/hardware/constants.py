"""Shift & scale constant preparation (Section IV-B1).

Flexon stores no resting or threshold voltage: the back-end normalises
every model so that ``v0 = 0`` and ``theta = 1.0`` and pre-computes the
per-step constants the data paths consume (``eps_m' = 1 - dt/tau``,
``e * eps_g``, ``eps_m * a * v_w``, ...). This module performs that
host-side preparation: it maps a reference
:class:`~repro.models.base.ModelParameters` and a time step onto the
quantised constant set of one Flexon neuron.

Two conventions bridge the reference equations and the hardware
microcode (Table V):

* **Weight pre-scaling** — the hardware adds synaptic input *unscaled*
  (``v' += eps_m' * v + I``), so for exponential-decay models the
  back-end pre-scales synaptic weights by ``eps_m = dt / tau``; LID
  models add inputs at full scale (Equation 3 does not scale ``I``).
* **Sign absorption** — constants that the microcode adds are stored
  with their sign absorbed (e.g. ``-V_leak``, ``-eps_m * v_c``,
  ``-theta / delta_T``), exactly as Table V's operand columns imply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.features import Feature, FeatureSet
from repro.fixedpoint import FLEXON_FORMAT, FixedFormat, fx_from_float
from repro.models.base import ModelParameters


@dataclass(frozen=True)
class NeuronConstants:
    """Quantised per-model constants, as raw fixed-point integers.

    Every field is a raw integer (or tuple of raw integers, one per
    synapse type) in ``fmt``; ``cnt_max`` is a plain integer count.
    """

    fmt: FixedFormat
    dt: float
    n_synapse_types: int
    #: 1 - eps_m (EXD decay multiplier)
    eps_m_c: int
    #: eps_m itself (QDI uses it as a multiplier)
    eps_m: int
    #: linear decay step V_leak = leak_rate * dt (LID)
    v_leak: int
    #: 1 - eps_g,i per synapse type (COBE/COBA decay)
    eps_g_c: Tuple[int, ...]
    #: e * eps_g,i per synapse type (COBA ramp)
    e_eps_g: Tuple[int, ...]
    #: reversal voltages v_g,i per synapse type (REV)
    v_g: Tuple[int, ...]
    #: -eps_m * v_c (QDI additive constant, sign absorbed)
    neg_eps_m_v_c: int
    #: 1 / delta_T (EXI exponent multiplier)
    inv_delta_t: int
    #: -theta / delta_T (EXI exponent additive constant, sign absorbed)
    neg_theta_inv_delta_t: int
    #: delta_T * eps_m (EXI output multiplier)
    delta_t_eps_m: int
    #: 1 - eps_w (ADT/SBT/RR adaptation decay)
    eps_w_c: int
    #: eps_m * a (SBT drive multiplier)
    eps_m_a: int
    #: -eps_m * a * v_w (SBT additive constant, sign absorbed)
    neg_eps_m_a_v_w: int
    #: 1 - eps_r (RR decay)
    eps_r_c: int
    #: v_ar, v_rr (RR reversal voltages)
    v_ar: int
    v_rr: int
    #: post-spike jumps b and q_r
    b: int
    q_r: int
    #: firing threshold (theta, or v_theta when QDI/EXI is enabled)
    threshold: int
    #: reset voltage (v0 after shift & scale: zero unless overridden)
    v_reset: int
    #: absolute-refractory reload value, in time steps
    cnt_max: int
    #: weight pre-scale applied by the back-end (float; host side)
    weight_scale: float
    #: constant 1.0 and -1.0 in fmt (operand constants for the ALU)
    one: int
    neg_one: int


def prepare_constants(
    parameters: ModelParameters,
    features: FeatureSet,
    dt: float,
    fmt: FixedFormat = FLEXON_FORMAT,
) -> NeuronConstants:
    """Quantise one model's constants for the given time step.

    The reference parameters are assumed to already be in shifted &
    scaled units (``v_rest = 0``, ``theta = 1.0``); a non-trivial shift
    is rejected rather than silently mis-simulated, because the data
    paths hard-wire the zero resting voltage.
    """
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    if parameters.n_synapse_types > 4:
        raise ConfigurationError(
            "Flexon supports at most 4 synapse types (the Table IV "
            f"type field is 2 bits); got {parameters.n_synapse_types}"
        )
    if abs(parameters.v_rest) > 1e-12:
        raise ConfigurationError(
            "Flexon hard-wires v0 = 0; shift the model parameters first "
            f"(got v_rest = {parameters.v_rest})"
        )
    p = parameters
    n_types = p.n_synapse_types
    eps_m = dt / p.tau
    eps_g = p.eps_g(dt)
    eps_w = p.eps_w(dt)
    eps_r = p.eps_r(dt)
    uses_initiation = features.spike_initiation is not None
    threshold = p.v_theta if uses_initiation else p.theta
    # LID adds inputs at full scale (Equation 3); EXD-family models
    # absorb the eps_m factor into the weights (Table V convention).
    weight_scale = 1.0 if Feature.LID in features else eps_m

    def q(value: float) -> int:
        return fx_from_float(value, fmt)

    return NeuronConstants(
        fmt=fmt,
        dt=dt,
        n_synapse_types=n_types,
        eps_m_c=q(1.0 - eps_m),
        eps_m=q(eps_m),
        v_leak=q(p.leak_rate * dt),
        eps_g_c=tuple(q(1.0 - e) for e in eps_g),
        e_eps_g=tuple(q(math.e * e) for e in eps_g),
        v_g=tuple(q(v) for v in p.v_g[:n_types]),
        neg_eps_m_v_c=q(-eps_m * p.v_c),
        inv_delta_t=q(1.0 / p.delta_t),
        neg_theta_inv_delta_t=q(-p.theta / p.delta_t),
        delta_t_eps_m=q(p.delta_t * eps_m),
        eps_w_c=q(1.0 - eps_w),
        eps_m_a=q(eps_m * p.a),
        neg_eps_m_a_v_w=q(-eps_m * p.a * p.v_w),
        eps_r_c=q(1.0 - eps_r),
        v_ar=q(p.v_ar),
        v_rr=q(p.v_rr),
        b=q(p.b),
        q_r=q(p.q_r),
        threshold=q(threshold),
        v_reset=q(p.reset_voltage),
        cnt_max=p.refractory_steps(dt),
        weight_scale=weight_scale,
        one=q(1.0),
        neg_one=q(-1.0),
    )
