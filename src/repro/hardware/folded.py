"""Spatially folded Flexon: microcoded two-stage pipeline (Figure 11).

Where the baseline Flexon instantiates every data path, the folded
design shares one multiplier, one adder and one exponential unit, and
schedules each feature's sub-operations over them with control signals
(Section V-B). This model interprets assembled
:class:`~repro.hardware.microcode.Microprogram` objects:

* **stage 1** executes the control signals — each is one pass through
  the shared MUL-ADD(-EXP) with operands selected per Table IV — and
  accumulates contributions into the membrane accumulator v';
* **stage 2** checks the firing condition, applies resets and
  spike-triggered jumps, ticks the refractory counter, and writes the
  (truncated) membrane value back.

Functional correctness is verified against the baseline Flexon bit for
bit (the equivalence the paper's Table V schedules must guarantee), and
the per-neuron cycle occupancy (``signals + 1``) feeds the Figure 13
latency model — e.g. QDI's structural hazard on the single multiplier
makes its simulation take an extra cycle, exactly as Section V-B notes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SimulationError
from repro.features import Feature
from repro.fixedpoint import (
    MEMBRANE_FORMAT,
    FixedFormat,
    fx_add,
    fx_exp,
    fx_mul,
    fx_saturate,
)
from repro.hardware import datapaths as dp
from repro.hardware.control import (
    AOperand,
    BOperand,
    N_STATE_REGISTERS,
    STATE_G,
    STATE_R,
    STATE_V,
    STATE_W,
    STATE_Y,
)
from repro.hardware.microcode import Microprogram


class FoldedFlexonNeuron:
    """A vectorised array of folded Flexon neurons running one program."""

    def __init__(
        self,
        program: Microprogram,
        n: int,
        membrane_format: Optional[FixedFormat] = MEMBRANE_FORMAT,
    ):
        self.program = program
        self.n = n
        self.membrane_format = membrane_format
        self.regs = np.zeros((N_STATE_REGISTERS, n), dtype=np.int64)
        if Feature.AR in program.features:
            self.cnt = np.zeros(n, dtype=np.int64)
        else:
            self.cnt = None
        #: Total pipeline cycles consumed so far (all neurons).
        self.total_cycles = 0

    @property
    def cycles_per_neuron(self) -> int:
        """Pipeline occupancy of one neuron update."""
        return self.program.cycles_per_neuron

    def step(self, raw_inputs: np.ndarray) -> np.ndarray:
        """Advance every neuron one time step; return the fired mask."""
        program = self.program
        c = program.constants
        fmt = c.fmt
        if raw_inputs.shape != (c.n_synapse_types, self.n):
            raise SimulationError(
                f"expected inputs of shape {(c.n_synapse_types, self.n)}, "
                f"got {raw_inputs.shape}"
            )
        if self.cnt is not None:
            gated = dp.ArPath.gate(raw_inputs, self.cnt)
        else:
            gated = raw_inputs

        # -- stage 1: execute the control signals --------------------------
        acc = np.zeros(self.n, dtype=np.int64)
        tmp = np.zeros(self.n, dtype=np.int64)
        for signal in program.signals:
            if signal.a == AOperand.CONSTANT:
                mul_operand = program.mul_constants[signal.ca]
            else:
                mul_operand = tmp
            product = fx_mul(mul_operand, self.regs[signal.s], fmt)
            if signal.b == BOperand.ZERO:
                out = product
            elif signal.b == BOperand.CONSTANT:
                out = fx_add(product, program.add_constants[signal.cb], fmt)
            elif signal.b == BOperand.INPUT:
                out = fx_add(product, gated[signal.syn_type], fmt)
            elif signal.b == BOperand.TMP:
                out = fx_add(product, tmp, fmt)
            else:  # LEAK: clamped -V_leak of the selected state register
                leak = np.minimum(
                    c.v_leak, np.maximum(self.regs[signal.s], 0)
                )
                out = fx_add(product, -leak, fmt)
            if signal.exp:
                out = fx_exp(out, fmt)
            tmp = out
            if signal.s_wr:
                self.regs[signal.s] = out
            if signal.v_acc:
                acc = fx_add(acc, out, fmt)

        # -- stage 2: fire, reset, write back --------------------------------
        features = program.features
        fired = acc > c.threshold
        v_next = np.where(fired, np.int64(c.v_reset), acc)
        if self.membrane_format is not None:
            v_next = fx_saturate(v_next, self.membrane_format)
        self.regs[STATE_V] = v_next
        # Jump signs mirror FlexonNeuron (RR conductances grow on fire).
        if Feature.RR in features:
            self.regs[STATE_W] = self.regs[STATE_W] + np.where(fired, c.b, 0)
            self.regs[STATE_R] = self.regs[STATE_R] + np.where(
                fired, c.q_r, 0
            )
        elif features.has_adaptation_state:
            self.regs[STATE_W] = self.regs[STATE_W] - np.where(fired, c.b, 0)
        if self.cnt is not None:
            cnt = dp.ArPath.tick(self.cnt)
            cnt[fired] = c.cnt_max
            self.cnt = cnt
        self.total_cycles += self.n * self.cycles_per_neuron
        return fired

    # -- host-side views -------------------------------------------------------

    def float_state(self) -> Dict[str, np.ndarray]:
        """The architectural state as floats, named like the models'."""
        fmt = self.program.constants.fmt
        c = self.program.constants
        out = {"v": self.regs[STATE_V].astype(np.float64) / fmt.scale}
        features = self.program.features
        if features.uses_conductance:
            for i in range(c.n_synapse_types):
                out[f"g{i}"] = self.regs[STATE_G[i]].astype(np.float64) / fmt.scale
        if Feature.COBA in features:
            for i in range(c.n_synapse_types):
                out[f"y{i}"] = self.regs[STATE_Y[i]].astype(np.float64) / fmt.scale
        if features.has_adaptation_state:
            out["w"] = self.regs[STATE_W].astype(np.float64) / fmt.scale
        if Feature.RR in features:
            out["r"] = self.regs[STATE_R].astype(np.float64) / fmt.scale
        if self.cnt is not None:
            out["cnt"] = self.cnt.astype(np.float64)
        return out

    def snapshot(self) -> Dict[str, object]:
        """Copies of the architectural registers (checkpointing)."""
        return {
            "regs": self.regs.copy(),
            "cnt": None if self.cnt is None else self.cnt.copy(),
            "total_cycles": self.total_cycles,
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Overwrite the register file from a :meth:`snapshot`."""
        regs = np.asarray(snapshot["regs"], dtype=np.int64)
        if regs.shape != self.regs.shape:
            raise SimulationError(
                f"snapshot register shape {regs.shape} does not match "
                f"{self.regs.shape}"
            )
        self.regs = regs.copy()
        cnt = snapshot["cnt"]
        if (cnt is None) != (self.cnt is None):
            raise SimulationError(
                "snapshot refractory counter does not match this program"
            )
        if cnt is not None:
            self.cnt = np.asarray(cnt, dtype=np.int64).copy()
        self.total_cycles = int(snapshot["total_cycles"])
