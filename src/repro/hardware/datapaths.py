"""Per-feature data paths (paper Figure 9).

Each class models one of the ten data paths: its fixed-point arithmetic
(vectorised over an array of neurons) and its arithmetic-unit inventory
(consumed by the Figure 12 cost model). The arithmetic follows the
Table V operand conventions exactly — one multiply, one add, optional
exponentiation per micro-operation — so the baseline Flexon built from
these data paths is bit-identical to the folded microcode interpreter.

All value arguments and returns are *raw* fixed-point int64 arrays in
the constants' format. Saturating multiply/add come from
:mod:`repro.fixedpoint`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.fixedpoint import fx_add, fx_exp, fx_mul, fx_neg, fx_sub
from repro.hardware.constants import NeuronConstants

#: An arithmetic-unit inventory: unit kind -> count.
Inventory = Dict[str, int]


def _merge(*inventories: Inventory) -> Inventory:
    total: Inventory = {}
    for inventory in inventories:
        for unit, count in inventory.items():
            total[unit] = total.get(unit, 0) + count
    return total


class DataPath:
    """Base class carrying the inventory interface."""

    #: Data-path name as used in Figure 12's x-axis.
    name: str = "abstract"

    @classmethod
    def unit_inventory(cls) -> Inventory:
        """Arithmetic units instantiated by one copy of this data path."""
        raise NotImplementedError


class CubExdLidPath(DataPath):
    """Figure 9a: the shared CUB / EXD / LID data path.

    Implements LIF (CUB + EXD) and LLIF (CUB + LID). The LID leak is
    clamped so decay stops at the (zero) resting voltage — the steady
    state of Figure 4 — via a comparator/MUX pair.
    """

    name = "CUB/EXD/LID"

    @staticmethod
    def exd(v: np.ndarray, c: NeuronConstants) -> np.ndarray:
        """Decay contribution ``eps_m' * v``."""
        return fx_mul(v, c.eps_m_c, c.fmt)

    @staticmethod
    def lid(v: np.ndarray, c: NeuronConstants) -> np.ndarray:
        """Linear-decay contribution ``v - min(V_leak, max(v, 0))``."""
        leak = np.minimum(c.v_leak, np.maximum(v, 0))
        return fx_sub(v, leak, c.fmt)

    @staticmethod
    def cub(accumulated_input: np.ndarray, c: NeuronConstants) -> np.ndarray:
        """Current-based contribution: the gated input itself."""
        return accumulated_input

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"mul": 1, "add": 2, "cmp": 1, "mux": 2}


class CobePath(DataPath):
    """Figure 9b: exponential conductance, one instance per synapse type.

    ``g_i = eps_g,i' * g_i + I_i``; contributes ``g_i`` (unless REV
    takes over the contribution).
    """

    name = "COBE"

    @staticmethod
    def update(
        g: np.ndarray, gated_input: np.ndarray, type_index: int, c: NeuronConstants
    ) -> np.ndarray:
        decayed = fx_mul(g, c.eps_g_c[type_index], c.fmt)
        return fx_add(decayed, gated_input, c.fmt)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"mul": 1, "add": 1}


class CobaPath(DataPath):
    """Figure 9c: alpha-function conductance (embeds the COBE path).

    ``y_i = eps_g,i' * y_i + I_i``; ``tmp = (e * eps_g,i) * y_i``;
    ``g_i = eps_g,i' * g_i + tmp``.
    """

    name = "COBA"

    @staticmethod
    def update(
        g: np.ndarray,
        y: np.ndarray,
        gated_input: np.ndarray,
        type_index: int,
        c: NeuronConstants,
    ) -> Tuple[np.ndarray, np.ndarray]:
        y_new = fx_add(
            fx_mul(y, c.eps_g_c[type_index], c.fmt), gated_input, c.fmt
        )
        ramp = fx_mul(y_new, c.e_eps_g[type_index], c.fmt)
        g_new = fx_add(fx_mul(g, c.eps_g_c[type_index], c.fmt), ramp, c.fmt)
        return g_new, y_new

    @classmethod
    def unit_inventory(cls) -> Inventory:
        # The embedded COBE path plus the y update and the ramp multiply.
        return _merge(CobePath.unit_inventory(), {"mul": 2, "add": 1})


class RevPath(DataPath):
    """Figure 9d: reversal-voltage scaling of a conductance.

    ``tmp = -v + v_g,i``; contribution ``tmp * g_i``.
    """

    name = "REV"

    @staticmethod
    def contribution(
        v: np.ndarray, g: np.ndarray, type_index: int, c: NeuronConstants
    ) -> np.ndarray:
        tmp = fx_add(fx_neg(v, c.fmt), c.v_g[type_index], c.fmt)
        return fx_mul(tmp, g, c.fmt)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"mul": 1, "add": 1}


class QdiPath(DataPath):
    """Figure 9e: quadratic spike initiation.

    ``tmp = eps_m * v + (-eps_m * v_c)``; contribution ``tmp * v``
    (two uses of the multiplier — the folding example of Section V-B).
    """

    name = "QDI"

    @staticmethod
    def contribution(v: np.ndarray, c: NeuronConstants) -> np.ndarray:
        tmp = fx_add(fx_mul(v, c.eps_m, c.fmt), c.neg_eps_m_v_c, c.fmt)
        return fx_mul(tmp, v, c.fmt)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"mul": 2, "add": 1}


class ExiPath(DataPath):
    """Figure 9f: exponential spike initiation.

    ``e = exp(v / delta_T - theta / delta_T)``;
    contribution ``(delta_T * eps_m) * e``. The exp unit uses the
    Schraudolph approximation (Section IV-B1).
    """

    name = "EXI"

    @staticmethod
    def contribution(v: np.ndarray, c: NeuronConstants) -> np.ndarray:
        exponent = fx_add(
            fx_mul(v, c.inv_delta_t, c.fmt), c.neg_theta_inv_delta_t, c.fmt
        )
        exp_out = fx_exp(exponent, c.fmt)
        return fx_mul(exp_out, c.delta_t_eps_m, c.fmt)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        # Two multiplies, the exponent and output adds, and the exp
        # unit itself — the priciest path (Section IV-B1 pipelines it).
        return {"mul": 2, "add": 2, "exp": 1}


class AdtPath(DataPath):
    """Figure 9g: adaptation decay — ``w = eps_w' * w``; contributes w.

    The paper splits this path in two sub-paths reused by SBT and RR;
    the decay multiply here is that shared sub-path.
    """

    name = "ADT"

    @staticmethod
    def decay(w: np.ndarray, c: NeuronConstants) -> np.ndarray:
        return fx_mul(w, c.eps_w_c, c.fmt)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"mul": 1, "add": 1}


class SbtPath(DataPath):
    """Figure 9h: subthreshold oscillation (embeds the ADT decay).

    ``tmp = (eps_m * a) * v + (-eps_m * a * v_w)``;
    ``w = eps_w' * w + tmp``; contributes w.
    """

    name = "SBT"

    @staticmethod
    def update(
        w: np.ndarray, v: np.ndarray, c: NeuronConstants
    ) -> np.ndarray:
        tmp = fx_add(fx_mul(v, c.eps_m_a, c.fmt), c.neg_eps_m_a_v_w, c.fmt)
        return fx_add(AdtPath.decay(w, c), tmp, c.fmt)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return _merge(AdtPath.unit_inventory(), {"mul": 1, "add": 1})


class ArPath(DataPath):
    """Figure 9i: absolute refractory counter.

    A saturating down-counter gates the accumulated input while
    positive (Equation 7). No multiplier — the cheapest data path.
    """

    name = "AR"

    @staticmethod
    def gate(inputs: np.ndarray, cnt: np.ndarray) -> np.ndarray:
        """Zero the input rows of neurons still in their window."""
        return inputs * (cnt <= 0)

    @staticmethod
    def tick(cnt: np.ndarray) -> np.ndarray:
        """One saturating decrement of the counters."""
        return np.maximum(cnt - 1, 0)

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"add": 1, "cmp": 2, "mux": 1}


class RrPath(DataPath):
    """Figure 9j: relative refractory (Equation 8).

    Decays both ``w`` and ``r`` (reusing the ADT decay sub-path) and
    contributes two reversal-coupled currents:
    ``w * (v_ar - v)`` and ``r * (v_rr - v)``.
    """

    name = "RR"

    @staticmethod
    def update(
        w: np.ndarray, r: np.ndarray, v: np.ndarray, c: NeuronConstants
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns (w_new, r_new, contribution)."""
        w_new = AdtPath.decay(w, c)
        tmp_w = fx_add(fx_neg(v, c.fmt), c.v_ar, c.fmt)
        contrib_w = fx_mul(tmp_w, w_new, c.fmt)
        r_new = fx_mul(r, c.eps_r_c, c.fmt)
        tmp_r = fx_add(fx_neg(v, c.fmt), c.v_rr, c.fmt)
        contrib_r = fx_mul(tmp_r, r_new, c.fmt)
        contribution = fx_add(contrib_w, contrib_r, c.fmt)
        return w_new, r_new, contribution

    @classmethod
    def unit_inventory(cls) -> Inventory:
        return {"mul": 4, "add": 3}


#: The ten data paths in Figure 12's presentation order.
ALL_DATAPATHS = (
    CubExdLidPath,
    CobePath,
    CobaPath,
    RevPath,
    QdiPath,
    ExiPath,
    AdtPath,
    SbtPath,
    ArPath,
    RrPath,
)
