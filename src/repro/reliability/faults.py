"""Fault injection: measure the robustness envelope, don't assume it.

The paper argues Flexon's fixed-point arithmetic produces the same
spikes as the float reference (Section VI-A). That is a statement
about *fault-free* hardware. This module makes the complementary
question measurable: how far do the Flexon/folded arrays drift when
things go wrong — a state word takes a bit flip (SEU), the interconnect
drops spike deliveries, the input is perturbed?

:class:`FaultInjector` performs one-shot corruptions on a live
simulator: bit flips in fixed-point state words (hardware runtimes) or
IEEE-754 payloads (float runtimes), and direct NaN injection for
testing the numeric guardrails. The :class:`PhaseHook` fault models
(:class:`BitFlipFault`, :class:`SpikeDropFault`,
:class:`InputPerturbFault`) apply sustained fault processes during a
run; :mod:`repro.experiments.resilience` uses them to quantify
spike-train drift against the clean reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.hooks import PhaseHook
from repro.engine.runtime import CompiledRuntime, SolverRuntime
from repro.errors import SimulationError
from repro.hardware.backend import HardwareRuntime
from repro.hardware.control import STATE_G, STATE_R, STATE_V, STATE_W, STATE_Y
from repro.hardware.flexon import FlexonNeuron
from repro.network.backends import RuntimeBackend
from repro.network.simulator import Simulator
from repro.reliability.fallback import FallbackRuntime


@dataclass(frozen=True)
class BitFlip:
    """One injected single-bit upset."""

    population: str
    variable: str
    neuron: int
    bit: int
    #: "fixed" for raw fixed-point words, "float" for IEEE-754 payloads.
    domain: str


def _raw_state_words(runtime: HardwareRuntime) -> Dict[str, np.ndarray]:
    """Live int64 state words of a hardware runtime, by variable name."""
    neuron = runtime.neuron
    if isinstance(neuron, FlexonNeuron):
        return dict(neuron.state)
    # Folded: map the architectural float_state names onto register rows.
    out: Dict[str, np.ndarray] = {}
    for name in neuron.float_state():
        if name == "v":
            out[name] = neuron.regs[STATE_V]
        elif name == "w":
            out[name] = neuron.regs[STATE_W]
        elif name == "r":
            out[name] = neuron.regs[STATE_R]
        elif name == "cnt":
            out[name] = neuron.cnt
        elif name.startswith("g"):
            out[name] = neuron.regs[STATE_G[int(name[1:])]]
        elif name.startswith("y"):
            out[name] = neuron.regs[STATE_Y[int(name[1:])]]
    return out


class FaultInjector:
    """One-shot corruptions of a live simulation's state."""

    def __init__(self, simulator: Simulator, seed: int = 0) -> None:
        backend = simulator.backend
        if not isinstance(backend, RuntimeBackend):
            raise SimulationError(
                "fault injection needs a backend with population runtimes"
            )
        self.simulator = simulator
        self.backend = backend
        self.rng = np.random.default_rng(seed)
        #: Every fault injected so far, in order.
        self.log: List[BitFlip] = []

    def _target_runtime(self, population: str):
        runtime = self.backend.runtime(population)
        if isinstance(runtime, FallbackRuntime):
            return runtime.active
        return runtime

    def flip_state_bits(
        self,
        population: str,
        n_flips: int = 1,
        variable: Optional[str] = None,
    ) -> List[BitFlip]:
        """Flip ``n_flips`` random bits in one population's state.

        Hardware runtimes take the flip in their raw fixed-point words
        (bits ``0 .. total_bits-1``, the physically present storage);
        float runtimes take it in the IEEE-754 representation of a
        state value (bits ``0..63``) — the software analogue of the
        same upset.
        """
        runtime = self._target_runtime(population)
        flips: List[BitFlip] = []
        if isinstance(runtime, HardwareRuntime):
            words = _raw_state_words(runtime)
            n_bits = runtime.compiled.constants.fmt.total_bits
            domain = "fixed"
        elif isinstance(runtime, (CompiledRuntime, SolverRuntime)):
            words = runtime.state()
            n_bits = 64
            domain = "float"
        else:
            raise SimulationError(
                f"cannot inject faults into {type(runtime).__name__}"
            )
        names = sorted(words)
        if variable is not None:
            if variable not in words:
                raise SimulationError(
                    f"population {population!r} has no variable {variable!r}"
                )
            names = [variable]
        for _ in range(n_flips):
            name = names[self.rng.integers(len(names))]
            values = words[name]
            neuron = int(self.rng.integers(values.size))
            bit = int(self.rng.integers(n_bits))
            if domain == "fixed":
                values[neuron] = int(values[neuron]) ^ (1 << bit)
            else:
                raw = np.float64(values[neuron]).view(np.int64)
                values[neuron] = np.int64(int(raw) ^ (1 << bit)).view(
                    np.float64
                )
            flip = BitFlip(population, name, neuron, bit, domain)
            flips.append(flip)
            self.log.append(flip)
        return flips

    def inject_nan(
        self, population: str, variable: str = "v", index: int = 0
    ) -> None:
        """Poison one float state value with NaN (guardrail testing)."""
        runtime = self._target_runtime(population)
        if isinstance(runtime, HardwareRuntime):
            raise SimulationError(
                "hardware state is fixed point and cannot hold NaN; "
                "use flip_state_bits instead"
            )
        state = runtime.state()
        if variable not in state:
            raise SimulationError(
                f"population {population!r} has no variable {variable!r}"
            )
        values = state[variable]
        if not np.issubdtype(values.dtype, np.floating):
            raise SimulationError(
                f"variable {variable!r} is not float state; "
                "use flip_state_bits for fixed-point words"
            )
        values[index] = np.nan


class BitFlipFault(PhaseHook):
    """A sustained bit-flip process: upsets every ``every`` steps."""

    def __init__(
        self,
        simulator: Simulator,
        population: str,
        every: int,
        n_flips: int = 1,
        seed: int = 0,
        variable: Optional[str] = None,
    ) -> None:
        if every < 1:
            raise SimulationError(f"every must be >= 1, got {every}")
        self.injector = FaultInjector(simulator, seed=seed)
        self.population = population
        self.every = every
        self.n_flips = n_flips
        self.variable = variable

    @property
    def log(self) -> List[BitFlip]:
        return self.injector.log

    def on_step_start(self, step: int) -> None:
        if step == 0 or step % self.every:
            return
        self.injector.flip_state_bits(
            self.population, self.n_flips, self.variable
        )


class SpikeDropFault(PhaseHook):
    """Drops queued input entries with probability ``p_drop`` per step.

    Fires after the stimulus phase and before neuron computation, so it
    models a lossy interconnect: both externally forged spikes and
    in-flight synaptic deliveries landing this step can be lost.
    """

    def __init__(
        self,
        simulator: Simulator,
        p_drop: float,
        seed: int = 0,
        populations: Optional[Sequence[str]] = None,
    ) -> None:
        if not 0.0 <= p_drop <= 1.0:
            raise SimulationError(f"p_drop must be in [0, 1], got {p_drop}")
        self.simulator = simulator
        self.p_drop = p_drop
        self.rng = np.random.default_rng(seed)
        self.populations = None if populations is None else set(populations)
        #: Total input entries zeroed so far.
        self.dropped = 0

    def _targets(self):
        for name, queue in self.simulator.queues.items():
            if self.populations is None or name in self.populations:
                yield queue

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        if phase != "stimulus" or self.p_drop == 0.0:
            return
        for queue in self._targets():
            slot = queue.current()
            drop = self.rng.random(slot.shape) < self.p_drop
            drop &= slot != 0.0
            if drop.any():
                self.dropped += int(drop.sum())
                slot[drop] = 0.0


class InputPerturbFault(PhaseHook):
    """Adds Gaussian noise to the accumulated input of each step.

    Perturbs only entries that received some weight this step (noise on
    active wires), leaving silent inputs silent so purely event-driven
    behaviour is preserved.
    """

    def __init__(
        self,
        simulator: Simulator,
        sigma: float,
        seed: int = 0,
        populations: Optional[Sequence[str]] = None,
    ) -> None:
        if sigma < 0:
            raise SimulationError(f"sigma must be non-negative, got {sigma}")
        self.simulator = simulator
        self.sigma = sigma
        self.rng = np.random.default_rng(seed)
        self.populations = None if populations is None else set(populations)
        #: Total input entries perturbed so far.
        self.perturbed = 0

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        if phase != "stimulus" or self.sigma == 0.0:
            return
        for name, queue in self.simulator.queues.items():
            if self.populations is not None and name not in self.populations:
                continue
            slot = queue.current()
            active = slot != 0.0
            count = int(active.sum())
            if count:
                slot[active] += self.rng.normal(0.0, self.sigma, size=count)
                self.perturbed += count
