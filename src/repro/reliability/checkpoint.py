"""Checkpoint/resume: make any simulation killable and bit-identically
resumable.

A multi-hour paper-scale run must survive a crash. A
:class:`Checkpoint` captures *everything* a
:class:`~repro.network.simulator.Simulator` needs to continue exactly
where it stopped:

* the global step index,
* the stimulus RNG's bit-generator state,
* every population's :class:`~repro.routing.ring.DelayRing` (in-flight
  delayed spikes: per-bucket accumulated weights *and* integral event
  counts, plus the ring head and lifetime enqueue counter),
* every population runtime's state, via the runtime ``snapshot`` seam —
  SoA float blocks (compiled), dict state plus solver counters
  (solver), raw fixed-point words (hardware), degradation status
  (fallback),
* every plasticity rule's lazy traces — per-neuron ``(value,
  last_update_step)`` pairs, the rule's step clock and counters — and
  the weights the rule mutates,
* optionally the spikes recorded so far, so a resumed run's recorder
  carries the full train.

Restoring verifies a structural signature (network name, backend name,
dt, population sizes) and raises
:class:`~repro.errors.CheckpointError` on any mismatch, so a
checkpoint can never be silently applied to the wrong simulation. The
resumed run is bit-identical to an uninterrupted one on every backend —
pinned by tests on the reference, engine, and hardware paths.

Files are written with :mod:`pickle` (trusted local artifacts, like
numpy's ``allow_pickle`` files): only load checkpoints you produced.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.hooks import PhaseHook
from repro.errors import CheckpointError
from repro.io import atomic_writer
from repro.network.backends import RuntimeBackend
from repro.network.recorder import SpikeRecorder
from repro.network.simulator import Simulator

#: Bumped whenever the on-disk payload layout changes.
#: 1 → 2: spike queues became delay rings (snapshots gained integral
#: per-bucket event counts, a min-delay flush horizon and the lifetime
#: enqueue counter) and PairSTDP traces went lazy (dense ``x_pre`` /
#: ``y_post`` arrays replaced by ``(value, last_step)`` pairs plus the
#: rule's step clock). Version-1 files cannot express either and are
#: rejected at restore.
CHECKPOINT_VERSION = 2


def _signature_of(simulator: Simulator) -> Dict[str, object]:
    return {
        "network": simulator.network.name,
        "backend": simulator.backend.name,
        "dt": simulator.dt,
        "populations": {
            name: population.n
            for name, population in simulator.network.populations.items()
        },
    }


@dataclass
class Checkpoint:
    """A complete, restorable snapshot of one simulator's state."""

    version: int
    signature: Dict[str, object]
    step: int
    rng_state: Dict[str, object]
    queues: Dict[str, dict]
    runtimes: Dict[str, dict]
    plasticity: List[dict]
    spikes: Optional[Dict[str, tuple]] = field(default=None)

    # -- capture -----------------------------------------------------------

    @classmethod
    def capture(
        cls,
        simulator: Simulator,
        spikes: Optional[SpikeRecorder] = None,
    ) -> "Checkpoint":
        """Snapshot a simulator between steps.

        ``spikes`` optionally includes a recorder's accumulated spike
        train so a resumed run can report the full history; pass
        ``simulator.live_spikes`` when capturing mid-run.
        """
        backend = simulator.backend
        if not isinstance(backend, RuntimeBackend):
            raise CheckpointError(
                f"backend {backend.name!r} does not expose population "
                "runtimes and cannot be checkpointed"
            )
        if not backend.runtimes:
            raise CheckpointError("backend not prepared; nothing to capture")
        return cls(
            version=CHECKPOINT_VERSION,
            signature=_signature_of(simulator),
            step=simulator.current_step,
            rng_state=simulator.rng.bit_generator.state,
            queues={
                name: queue.snapshot()
                for name, queue in simulator.queues.items()
            },
            runtimes={
                name: runtime.snapshot()
                for name, runtime in backend.runtimes.items()
            },
            plasticity=[
                rule.snapshot()
                for rule in simulator.network.plasticity_rules
            ],
            spikes=None if spikes is None else spikes.snapshot(),
        )

    # -- restore -----------------------------------------------------------

    def restore(self, simulator: Simulator) -> None:
        """Overwrite a freshly built simulator with this snapshot.

        The simulator must have been constructed over the same network
        shape, backend kind and dt the checkpoint was captured from.
        """
        if self.version != CHECKPOINT_VERSION:
            detail = ""
            if self.version == 1:
                detail = (
                    "; version 1 predates delay-ring event counts and "
                    "lazy plasticity traces — re-capture from a fresh run"
                )
            raise CheckpointError(
                f"checkpoint version {self.version} not supported "
                f"(expected {CHECKPOINT_VERSION}){detail}"
            )
        expected = _signature_of(simulator)
        if self.signature != expected:
            raise CheckpointError(
                f"checkpoint signature {self.signature} does not match "
                f"this simulator {expected}"
            )
        backend = simulator.backend
        if not isinstance(backend, RuntimeBackend):
            raise CheckpointError(
                f"backend {backend.name!r} cannot restore a checkpoint"
            )
        if set(self.runtimes) != set(backend.runtimes):
            raise CheckpointError(
                "checkpointed populations do not match the backend's"
            )
        rules = simulator.network.plasticity_rules
        if len(self.plasticity) != len(rules):
            raise CheckpointError(
                f"checkpoint has {len(self.plasticity)} plasticity rules, "
                f"the network has {len(rules)}"
            )
        simulator.rng.bit_generator.state = self.rng_state
        for name, payload in self.queues.items():
            simulator.queues[name].restore(payload)
        for name, payload in self.runtimes.items():
            backend.runtimes[name].restore(payload)
        for rule, payload in zip(rules, self.plasticity):
            rule.restore(payload)
        simulator._step = self.step

    def seed_recorder(self) -> SpikeRecorder:
        """A recorder pre-loaded with the captured spike history.

        Pass it to ``Simulator.run(..., spikes=...)`` so the resumed
        run appends to the history and reports the full train.
        """
        recorder = SpikeRecorder()
        if self.spikes is not None:
            recorder.load(self.spikes)
        return recorder

    # -- file round trip ---------------------------------------------------

    def save(self, path: str) -> None:
        """Write atomically (via :func:`repro.io.atomic_writer`) so a
        crash mid-write never destroys the previous good checkpoint."""
        with atomic_writer(path, "wb") as handle:
            pickle.dump(self, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        """Read a checkpoint written by :meth:`save` (trusted input).

        Every failure mode raises :class:`CheckpointError` carrying the
        ``path`` and a machine-readable ``reason`` — a truncated file
        (torn copy), a non-pickle file, a pickle of the wrong type, or
        a plain I/O error — never a bare ``EOFError`` or
        ``UnpicklingError`` from the pickle internals.
        """
        try:
            with open(path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except FileNotFoundError as error:
            raise CheckpointError(
                f"checkpoint {path!r} does not exist",
                path=str(path),
                reason="not-found",
            ) from error
        except EOFError as error:
            raise CheckpointError(
                f"checkpoint {path!r} is truncated: {error}",
                path=str(path),
                reason="truncated",
            ) from error
        except pickle.UnpicklingError as error:
            raise CheckpointError(
                f"checkpoint {path!r} is not a valid pickle: {error}",
                path=str(path),
                reason="not-a-pickle",
            ) from error
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint {path!r}: {error}",
                path=str(path),
                reason="io-error",
            ) from error
        except (
            # A corrupt or alien pickle stream can surface as almost
            # anything while object graphs rebuild: bad opcodes decode
            # to missing names, wrong argument counts, stray indices…
            AttributeError,
            ImportError,
            IndexError,
            KeyError,
            TypeError,
            ValueError,
        ) as error:
            raise CheckpointError(
                f"checkpoint {path!r} is corrupt: "
                f"{type(error).__name__}: {error}",
                path=str(path),
                reason="corrupt",
            ) from error
        if not isinstance(checkpoint, cls):
            raise CheckpointError(
                f"{path!r} does not contain a checkpoint "
                f"(got {type(checkpoint).__name__})",
                path=str(path),
                reason="wrong-type",
            )
        return checkpoint


class CheckpointHook(PhaseHook):
    """Writes a checkpoint file every N steps during a run.

    Captures at step boundaries (``on_step_start``), where all state —
    queues, runtimes, RNG — is mutually consistent. The file at
    ``path`` is atomically replaced each time, so it always holds the
    latest complete checkpoint.
    """

    def __init__(
        self,
        simulator: Simulator,
        every: int,
        path: str,
        include_spikes: bool = True,
    ) -> None:
        if every < 1:
            raise CheckpointError(f"every must be >= 1, got {every}")
        self.simulator = simulator
        self.every = every
        self.path = path
        self.include_spikes = include_spikes
        #: Checkpoints written so far.
        self.captures = 0

    def on_step_start(self, step: int) -> None:
        if step == 0 or step % self.every:
            return
        spikes = self.simulator.live_spikes if self.include_spikes else None
        Checkpoint.capture(self.simulator, spikes=spikes).save(self.path)
        self.captures += 1
