"""FallbackRuntime: degrade to the verbatim solver path on a fault.

The compiled step-plan kernels are the fast path, but a long run should
not die because one population's state went numerically bad — NEST-like
stacks degrade and account instead. :class:`FallbackRuntime` wraps a
primary runtime (in practice a
:class:`~repro.engine.runtime.CompiledRuntime`) and keeps a snapshot of
the pre-step state; after every advance it screens the primary's
health, and on a fault it

1. builds the population's :class:`~repro.engine.runtime.SolverRuntime`
   (the seed reference path, kept verbatim),
2. loads the *pre-step* snapshot into it — the last state known good,
3. re-executes the faulting step there, and
4. records a :class:`~repro.reliability.diagnostics.FallbackEvent`,
   which the simulator surfaces in ``SimulationResult.diagnostics``.

From that step on the population runs on the solver path. The wrapper
costs one state copy per step while the primary is healthy — the price
of being able to replay the faulting step — which is why the policy is
opt-in (``ReferenceBackend(fault_policy="fallback")``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.engine.runtime import (
    DIVERGENCE_LIMIT,
    PopulationRuntime,
    SolverRuntime,
)
from repro.models.base import State
from repro.reliability.diagnostics import (
    MAX_REPORTED_INDICES,
    FallbackEvent,
)


class FallbackRuntime(PopulationRuntime):
    """Runs a primary runtime; re-seats onto the solver path on fault."""

    def __init__(
        self,
        primary: PopulationRuntime,
        solver_factory: Callable[[], SolverRuntime],
        limit: Optional[float] = DIVERGENCE_LIMIT,
    ) -> None:
        super().__init__(primary.name, primary.n)
        self.primary = primary
        self.solver_factory = solver_factory
        self.limit = limit
        self.active: PopulationRuntime = primary
        self.advances = 0
        #: Every degradation this runtime performed (usually 0 or 1).
        self.fallback_events: List[FallbackEvent] = []
        # Pre-step snapshot buffers, allocated once against the
        # primary's live views and refreshed in place every step.
        self._snapshot: State = {
            name: values.copy() for name, values in primary.state().items()
        }

    @property
    def degraded(self) -> bool:
        """Whether this population has fallen back to the solver path."""
        return self.active is not self.primary

    # -- PopulationRuntime interface --------------------------------------

    def advance(self, inputs: np.ndarray, dt: float) -> np.ndarray:
        step = self.advances
        self.advances += 1
        if self.degraded:
            return self.active.advance(inputs, dt)
        for name, values in self.primary.state().items():
            np.copyto(self._snapshot[name], values)
        fired = self.primary.advance(inputs, dt)
        report = self.primary.health(self.limit)
        if report is None:
            return fired
        variable, indices = report
        return self._degrade(step, variable, indices, inputs, dt)

    def _degrade(
        self,
        step: int,
        variable: str,
        indices: np.ndarray,
        inputs: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        solver = self.solver_factory()
        solver.load_state(self._snapshot)
        self.fallback_events.append(
            FallbackEvent(
                population=self.name,
                step=step,
                variable=variable,
                indices=tuple(
                    int(i) for i in indices[:MAX_REPORTED_INDICES]
                ),
                from_runtime=type(self.primary).__name__,
                to_runtime=type(solver).__name__,
            )
        )
        self.active = solver
        return solver.advance(inputs, dt)

    def state(self) -> State:
        return self.active.state()

    def evaluations_per_step(self) -> float:
        return self.active.evaluations_per_step()

    def health(self, limit=DIVERGENCE_LIMIT):
        return self.active.health(limit)

    def publish_metrics(self, metrics) -> None:
        """Publish degrade accounting, then the active runtime's own
        counters (compiled while healthy, solver after a fault)."""
        labels = {"population": self.name}
        metrics.counter(
            "runtime_fallbacks_total",
            "Mid-run re-seats from the compiled onto the solver path.",
            labels,
        ).set_total(len(self.fallback_events))
        metrics.gauge(
            "runtime_degraded",
            "1 while a population runs on the fallback solver path.",
            labels,
        ).set(1.0 if self.degraded else 0.0)
        self.active.publish_metrics(metrics)

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "fallback",
            "degraded": self.degraded,
            "advances": self.advances,
            "events": list(self.fallback_events),
            "inner": self.active.snapshot(),
        }

    def restore(self, payload: Dict[str, object]) -> None:
        if payload["degraded"] and not self.degraded:
            self.active = self.solver_factory()
        elif not payload["degraded"]:
            self.active = self.primary
        self.active.restore(payload["inner"])
        self.advances = int(payload["advances"])
        self.fallback_events = list(payload["events"])
