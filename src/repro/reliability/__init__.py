"""Reliability layer: guardrails, degradation, checkpointing, faults.

Large-scale SNN stacks (NEST, GeNN) treat numeric trouble as something
to detect, account for, and survive — not something to assume away.
This package gives the reproduction the same discipline, wired through
the engine layer's ``PopulationRuntime`` / ``PhaseHook`` seams:

* :mod:`~repro.reliability.guard` — :class:`NumericsGuard`, a hook
  that screens every runtime's state and raises a structured
  :class:`~repro.errors.NumericsError` within one step of NaN/Inf or
  divergence appearing;
* :mod:`~repro.reliability.fallback` — :class:`FallbackRuntime`, the
  degrade policy: re-seat a faulting compiled population onto the
  verbatim solver path mid-run and record the event;
* :mod:`~repro.reliability.checkpoint` — :class:`Checkpoint` /
  :class:`CheckpointHook`: capture and bit-identically resume any
  simulation on any backend (``python -m repro run --checkpoint-every
  / --resume-from``);
* :mod:`~repro.reliability.faults` — :class:`FaultInjector` and
  sustained fault-process hooks, quantifying the robustness envelope
  (:mod:`repro.experiments.resilience`);
* :mod:`~repro.reliability.diagnostics` — the structured
  :class:`RunDiagnostics` every ``SimulationResult`` now carries.

Exports resolve lazily (PEP 562): the simulator imports the leaf
:mod:`~repro.reliability.diagnostics` module so every result can carry
diagnostics, while :mod:`~repro.reliability.checkpoint` and
:mod:`~repro.reliability.faults` import the simulator. Eager package
imports here would close that cycle; deferring them until first
attribute access keeps both directions working.
"""

import importlib

_EXPORTS = {
    "BitFlip": "repro.reliability.faults",
    "BitFlipFault": "repro.reliability.faults",
    "CHECKPOINT_VERSION": "repro.reliability.checkpoint",
    "Checkpoint": "repro.reliability.checkpoint",
    "CheckpointHook": "repro.reliability.checkpoint",
    "DegradedEvent": "repro.reliability.diagnostics",
    "FallbackEvent": "repro.reliability.diagnostics",
    "FallbackRuntime": "repro.reliability.fallback",
    "FaultInjector": "repro.reliability.faults",
    "InputPerturbFault": "repro.reliability.faults",
    "NumericsGuard": "repro.reliability.guard",
    "RunDiagnostics": "repro.reliability.diagnostics",
    "SpikeDropFault": "repro.reliability.faults",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted({*globals(), *_EXPORTS})
