"""NumericsGuard: fail-fast detection of numeric faults mid-run.

The paper's correctness story (Section VI-A) is that the fixed-point
datapaths reproduce the float reference's spikes exactly — a claim
that silently dies the moment any float path starts propagating
NaN/Inf or diverges. :class:`NumericsGuard` is a
:class:`~repro.engine.hooks.PhaseHook` that screens every population
runtime's live state after each neuron-computation phase (or every
``check_every`` steps for long runs) and raises a structured
:class:`~repro.errors.NumericsError` — population, step, variable and
offending indices included — within one step of the state going bad.

The screen itself is the per-runtime
:meth:`~repro.engine.runtime.PopulationRuntime.health` check, so any
backend that plugs into the runtime seam is guarded for free. Attach
with::

    guard = NumericsGuard(simulator.backend)
    simulator.run(n_steps, hooks=[guard])

For the degrade-instead-of-die policy, see
:class:`~repro.reliability.fallback.FallbackRuntime`.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.hooks import PhaseHook
from repro.engine.runtime import DIVERGENCE_LIMIT
from repro.errors import NumericsError, SimulationError
from repro.network.backends import RuntimeBackend
from repro.reliability.diagnostics import MAX_REPORTED_INDICES

__all__ = ["MAX_REPORTED_INDICES", "NumericsGuard"]


class NumericsGuard(PhaseHook):
    """Raises :class:`NumericsError` when any runtime's state goes bad.

    Parameters
    ----------
    backend:
        The simulator's backend; must expose population runtimes (every
        backend in this repo does, via :class:`RuntimeBackend`).
    check_every:
        Screen only every N-th step (1 = every step). Detection latency
        grows to N steps; the per-step cost shrinks accordingly.
    limit:
        Absolute state value treated as divergence, or ``None`` to
        check finiteness only.
    """

    def __init__(
        self,
        backend: RuntimeBackend,
        check_every: int = 1,
        limit: Optional[float] = DIVERGENCE_LIMIT,
    ) -> None:
        if not isinstance(backend, RuntimeBackend):
            raise SimulationError(
                "NumericsGuard needs a backend with population runtimes"
            )
        if check_every < 1:
            raise SimulationError(
                f"check_every must be >= 1, got {check_every}"
            )
        self.backend = backend
        self.check_every = check_every
        self.limit = limit
        #: Health screens performed so far (tests/monitoring).
        self.checks = 0

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        if phase != "neuron" or step % self.check_every:
            return
        for name, runtime in self.backend.runtimes.items():
            self.checks += 1
            report = runtime.health(self.limit)
            if report is None:
                continue
            variable, indices = report
            shown = [int(i) for i in indices[:MAX_REPORTED_INDICES]]
            raise NumericsError(
                f"population {name!r} has non-finite or divergent state "
                f"in {variable!r} at step {step} "
                f"({indices.size} neurons, first {shown})",
                population=name,
                step=step,
                variable=variable,
                indices=shown,
            )
