"""Structured run diagnostics: what the reliability layer observed.

A :class:`RunDiagnostics` rides along on every
:class:`~repro.network.simulator.SimulationResult`. It collects the
two kinds of events the reliability layer can witness during a run:

* **fallbacks** — populations the degrade policy re-seated from the
  compiled fast path onto the verbatim solver path after a numeric
  fault (:class:`FallbackEvent` records where, when, and why);
* **saturation** — per-population fixed-point clip accounting from the
  hardware runtimes (see
  :class:`~repro.fixedpoint.fixed.SaturationStats`).

A run with an empty diagnostics object behaved exactly as the paper's
correctness claims promise; anything recorded here is a quantified
deviation, not a silent one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from repro.fixedpoint import SaturationStats

#: How many offending indices a diagnostic record carries at most.
MAX_REPORTED_INDICES = 16


@dataclass(frozen=True)
class FallbackEvent:
    """One mid-run re-seat of a population onto the solver path."""

    #: Population whose compiled runtime went numerically bad.
    population: str
    #: Step index (runtime-local == simulator-global) of the fault.
    step: int
    #: First state variable found bad.
    variable: str
    #: Indices of the offending neurons (truncated to a sane length).
    indices: Tuple[int, ...]
    #: Runtime class names, e.g. ``CompiledRuntime`` -> ``SolverRuntime``.
    from_runtime: str = "CompiledRuntime"
    to_runtime: str = "SolverRuntime"

    def describe(self) -> str:
        return (
            f"step {self.step}: {self.population!r} fell back "
            f"{self.from_runtime} -> {self.to_runtime} "
            f"({self.variable} bad at {list(self.indices)})"
        )


@dataclass(frozen=True)
class DegradedEvent:
    """One whole-run downgrade to a less capable execution mode.

    Emitted when the shard coordinator exhausts a shard's retry budget
    and degrades the run to a single-process re-execution: the answer
    is still produced (and is still bit-identical, because the
    single-process path is the reference), but the scaling promise was
    broken and the record says exactly where.
    """

    #: What gave up, e.g. ``"retries-exhausted"`` or ``"spawn-failed"``.
    reason: str
    #: Shard that exhausted its budget (-1 when not shard-specific).
    shard: int = -1
    #: Barrier epoch at which the coordinator gave up.
    epoch: int = -1
    #: Attempts consumed on the failing shard before degrading.
    attempts: int = 0
    #: Free-form context (last failure classification, etc.).
    detail: str = ""

    def describe(self) -> str:
        where = f"shard {self.shard}" if self.shard >= 0 else "run"
        suffix = f": {self.detail}" if self.detail else ""
        return (
            f"epoch {self.epoch}: {where} degraded to single-process "
            f"({self.reason}, {self.attempts} attempts){suffix}"
        )


@dataclass
class RunDiagnostics:
    """Reliability events accumulated over one simulator's lifetime."""

    #: Solver fallbacks, in the order they happened.
    fallbacks: List[FallbackEvent] = field(default_factory=list)
    #: Fixed-point saturation accounting, keyed by population.
    saturation: Dict[str, SaturationStats] = field(default_factory=dict)
    #: Whole-run mode downgrades (sharded -> single-process).
    degraded: List[DegradedEvent] = field(default_factory=list)

    @property
    def total_saturations(self) -> int:
        """Clipped elements across every population and format."""
        return sum(stats.total_clipped for stats in self.saturation.values())

    def healthy(self) -> bool:
        """True when nothing degraded and nothing clipped."""
        return (
            not self.fallbacks
            and not self.degraded
            and self.total_saturations == 0
        )

    def to_dict(self) -> dict:
        """A JSON-serialisable view (``repro run --stats-json``)."""
        return {
            "healthy": self.healthy(),
            "total_saturations": self.total_saturations,
            "fallbacks": [
                {**asdict(event), "indices": list(event.indices)}
                for event in self.fallbacks
            ],
            "degraded": [asdict(event) for event in self.degraded],
            "saturation": {
                population: {
                    "checked": stats.checked,
                    "total_clipped": stats.total_clipped,
                    "clipped_by_format": {
                        fmt.describe(): count
                        for fmt, count in sorted(
                            stats.clipped.items(),
                            key=lambda item: item[0].describe(),
                        )
                    },
                }
                for population, stats in sorted(self.saturation.items())
            },
        }

    def summary(self) -> str:
        """Human-readable digest (empty string when healthy)."""
        lines: List[str] = []
        for event in self.fallbacks:
            lines.append(event.describe())
        for degraded in self.degraded:
            lines.append(degraded.describe())
        for population, stats in sorted(self.saturation.items()):
            if stats.total_clipped:
                lines.append(f"{population!r} saturation: {stats.describe()}")
        return "\n".join(lines)
