"""The crash flight recorder: a worker's last moments, post-mortem.

When a supervised worker dies — watchdog SIGKILL, kernel OOM kill, an
uncaught crash — its in-memory history dies with it, and today's
post-mortem is "re-run with more logging and hope it reproduces". The
flight recorder fixes that the way avionics does: a bounded ring of the
most recent events (log records, heartbeats, checkpoints, chaos
triggers) that survives the crash.

Two exit paths, because not every failure lets the worker speak:

* failures the worker catches (numerics, ``MemoryError``, a crash in
  its own code) ship the dump over the pipe inside the ``failed``
  message;
* failures it cannot catch (SIGKILL, a hard hang) are covered by the
  *sidecar*: the worker atomically rewrites its ring to a per-attempt
  file (``repro.io`` write-then-rename, throttled by wall clock), and
  the supervisor reads the sidecar back when the pipe never delivered
  a terminal message.

Either way the dump lands on ``AttemptReport.flight_recorder`` with
the run/job/attempt correlation IDs baked into every event, so a sweep
report alone is enough to reconstruct what the worker was doing when
it died.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Deque, Dict, Optional

from repro.io import atomic_write_json

__all__ = ["FLIGHT_SCHEMA", "FlightRecorder"]

FLIGHT_SCHEMA = "repro-flight/1"

#: Default ring capacity: enough for ~20 s of 0.1 s-cadence heartbeats
#: plus the lifecycle/log events around them, small enough that the
#: sidecar rewrite stays a sub-millisecond JSON dump.
DEFAULT_CAPACITY = 256

#: Default minimum seconds between sidecar rewrites.
DEFAULT_SYNC_INTERVAL = 1.0


class FlightRecorder:
    """Bounded ring of recent events with an atomic sidecar dump."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        context: Optional[Dict[str, object]] = None,
        sidecar_path: Optional[str] = None,
        sync_interval: float = DEFAULT_SYNC_INTERVAL,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.context: Dict[str, object] = dict(context or {})
        self.sidecar_path = sidecar_path
        self.sync_interval = sync_interval
        self._events: Deque[dict] = deque(maxlen=capacity)
        self._total = 0
        self._last_sync = 0.0

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, **fields) -> dict:
        """Append one event (stamped with ``ts`` and the bound context)."""
        event: Dict[str, object] = {"ts": time.time(), "kind": kind}
        event.update(self.context)
        event.update(fields)
        self._events.append(event)
        self._total += 1
        return event

    def observe_log(self, record: dict) -> None:
        """A log sink: mirror a structured log record into the ring."""
        event = dict(record)
        event["kind"] = "log"
        self._events.append(event)
        self._total += 1

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def recorded_total(self) -> int:
        """Events ever recorded, including ones the ring evicted."""
        return self._total

    @property
    def dropped(self) -> int:
        return self._total - len(self._events)

    def dump(self) -> dict:
        """The ring as a ``repro-flight/1`` document (oldest first)."""
        return {
            "schema": FLIGHT_SCHEMA,
            "capacity": self.capacity,
            "recorded_total": self._total,
            "dropped": self.dropped,
            "context": dict(self.context),
            "events": list(self._events),
        }

    # -- the sidecar -------------------------------------------------------

    def sync(self, force: bool = False) -> bool:
        """Atomically rewrite the sidecar; throttled unless ``force``.

        Returns whether a write happened. A recorder without a sidecar
        path never writes (the in-pipe dump is then the only exit).
        """
        if self.sidecar_path is None:
            return False
        now = time.monotonic()
        if not force and now - self._last_sync < self.sync_interval:
            return False
        self._last_sync = now
        atomic_write_json(self.sidecar_path, self.dump())
        return True

    @staticmethod
    def load_dump(path: str) -> Optional[dict]:
        """Read a sidecar dump back; ``None`` if missing or unparsable.

        The sidecar is written atomically so a partial file should be
        impossible, but a post-mortem reader must never crash on the
        artifact it is reading — any defect reads as "no dump".
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                dump = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(dump, dict) or dump.get("schema") != FLIGHT_SCHEMA:
            return None
        return dump
