"""The stdlib HTTP plane: metrics, health, status, and live events.

``repro serve`` (and ``--serve`` on ``repro run`` / ``repro sweep``)
exposes a running simulation the way a production service would —
scrapeable, probeable, and streamable — using nothing beyond the
standard library:

``GET /metrics``
    Prometheus text exposition, straight from the run's
    :class:`~repro.telemetry.registry.MetricsRegistry` (the format is
    the registry's own ``to_prometheus``; nothing is re-encoded here).
``GET /healthz``
    Liveness: 200 while the process and its runtimes are numerically
    sound, 503 with a reason otherwise (backed by the runtimes'
    ``health()`` screens and the supervisor breaker state).
``GET /readyz``
    Readiness: 200 once the run/sweep has started doing work.
``GET /status``
    A JSON snapshot of the :class:`StatusBoard` — the same document
    ``repro top`` renders — plus an ``sse`` block with the event
    bus's publish/drop accounting (per-subscriber ``dropped_events``
    included, so a slow consumer is visible from the outside).
``GET /runs``
    The run-provenance ledger (schema ``repro-ledger/1``) as compact
    summaries, newest first — the HTTP face of ``repro runs list``.
    404 when the plane has no ledger attached; ``?limit=N`` caps the
    rows returned.
``GET /alerts``
    The health layer's alert document (schema ``repro-alerts/1``):
    every rule, every alert instance with its pending/firing/resolved
    state and bounded transition history. 404 when the run carries no
    alert rules (``--alerts`` not given).
``GET /events``
    A Server-Sent Events stream (schema ``repro-events/1``) of
    phase/job/attempt events published on the :class:`EventBus`.
    Events carry ``event:`` (the type), ``id:`` (monotone sequence)
    and a JSON ``data:`` payload; keep-alive comment lines flow while
    the bus is quiet so proxies and clients can tell silence from
    death.

Design constraints, in order: never slow the simulation (publishers
never block — a slow SSE consumer loses events, counted per
subscriber, rather than back-pressuring the hot loop), never lie
(snapshots are taken under the board's lock), and never add a
dependency (``http.server`` + ``threading`` only).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "EVENTS_SCHEMA",
    "EventBus",
    "ObservabilityServer",
    "StatusBoard",
    "parse_serve_spec",
]

EVENTS_SCHEMA = "repro-events/1"

#: Per-subscriber event queue depth; beyond it the subscriber loses
#: events (counted) instead of the publisher blocking.
SUBSCRIBER_QUEUE_DEPTH = 512

#: Seconds of bus silence before an SSE keep-alive comment is sent.
KEEPALIVE_SECONDS = 2.0


def parse_serve_spec(spec: str) -> Tuple[str, int]:
    """Parse ``PORT`` / ``:PORT`` / ``HOST:PORT`` into (host, port).

    Port 0 asks the kernel for an ephemeral port (the bound port is in
    :attr:`ObservabilityServer.port` after ``start``). The default
    host is loopback — an observability plane should not be exposed
    beyond the machine without an explicit opt-in.
    """
    host, _, port_text = spec.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"invalid serve spec {spec!r}: expected PORT, :PORT or HOST:PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ConfigurationError(
            f"invalid serve port {port}: must be in [0, 65535]"
        )
    return host, port


class EventBus:
    """Fan-out of structured events to any number of subscribers.

    ``publish`` is wait-free from the publisher's view: each
    subscriber owns a bounded queue, and a full queue drops the event
    for that subscriber (tallied in ``dropped``) rather than blocking
    the simulation thread.
    """

    def __init__(self, queue_depth: int = SUBSCRIBER_QUEUE_DEPTH) -> None:
        self._queue_depth = queue_depth
        self._lock = threading.Lock()
        self._subscribers: List["_Subscription"] = []
        self._seq = 0
        self.published_total = 0
        #: Cumulative events dropped across all subscribers, including
        #: ones that have since unsubscribed (tallied at drop time, so
        #: a departing slow consumer's losses are not forgotten).
        self.dropped_total = 0

    def publish(self, event_type: str, payload: Optional[dict] = None) -> dict:
        """Publish one event; returns the stamped event document."""
        event: Dict[str, object] = {
            "schema": EVENTS_SCHEMA,
            "type": event_type,
            "ts": time.time(),
        }
        if payload:
            event.update(payload)
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            self.published_total += 1
            subscribers = list(self._subscribers)
        for subscription in subscribers:
            subscription.offer(event)
        return event

    def subscribe(self) -> "_Subscription":
        subscription = _Subscription(self, self._queue_depth)
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def _unsubscribe(self, subscription: "_Subscription") -> None:
        with self._lock:
            if subscription in self._subscribers:
                self._subscribers.remove(subscription)

    def _note_drop(self) -> None:
        with self._lock:
            self.dropped_total += 1

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def stats(self) -> dict:
        """Publish/drop accounting (the ``sse`` block on ``/status``)."""
        with self._lock:
            return {
                "subscribers": len(self._subscribers),
                "published_total": self.published_total,
                "dropped_events_total": self.dropped_total,
                "dropped_events": [s.dropped for s in self._subscribers],
            }


class _Subscription:
    """One subscriber's bounded event queue."""

    def __init__(self, bus: EventBus, depth: int) -> None:
        self._bus = bus
        self._queue: "queue.Queue[dict]" = queue.Queue(maxsize=depth)
        self.dropped = 0

    def offer(self, event: dict) -> None:
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            self.dropped += 1
            self._bus._note_drop()

    def get(self, timeout: float) -> Optional[dict]:
        """Next event, or ``None`` after ``timeout`` seconds of quiet."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._bus._unsubscribe(self)

    def __enter__(self) -> "_Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StatusBoard:
    """A thread-safe dict the run updates and ``/status`` snapshots.

    Writers (the simulation/supervisor threads) call :meth:`update`
    with partial payloads; readers get a consistent deep-enough copy —
    top-level and one nested dict level are copied, which covers every
    payload this repo publishes.
    """

    def __init__(self, **initial) -> None:
        self._lock = threading.Lock()
        self._data: Dict[str, object] = dict(initial)
        self._updated = 0.0

    def update(self, **fields) -> None:
        with self._lock:
            self._data.update(fields)
            self._updated = time.time()

    def merge(self, key: str, **fields) -> None:
        """Update one nested dict entry (e.g. a single job's row)."""
        with self._lock:
            nested = self._data.setdefault(key, {})
            if not isinstance(nested, dict):
                raise ConfigurationError(
                    f"status key {key!r} is not mergeable (holds "
                    f"{type(nested).__name__})"
                )
            nested.update(fields)
            self._updated = time.time()

    def snapshot(self) -> dict:
        with self._lock:
            out: Dict[str, object] = {}
            for key, value in self._data.items():
                out[key] = dict(value) if isinstance(value, dict) else value
            out["updated_ts"] = self._updated
            return out


class _Handler(BaseHTTPRequestHandler):
    """Routes the plane's endpoints; everything else is 404."""

    #: Set by ObservabilityServer at construction time.
    plane: "ObservabilityServer"

    server_version = "repro-observability/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Server access logs stay off stdout (they'd corrupt CLI output)."""

    # -- helpers -----------------------------------------------------------

    def _respond(
        self, code: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_text(self, code: int, text: str) -> None:
        self._respond(code, text.encode("utf-8"), "text/plain; charset=utf-8")

    def _respond_json(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._respond(code, body, "application/json")

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path, _, query = self.path.partition("?")
        try:
            if path == "/metrics":
                self._serve_metrics()
            elif path == "/healthz":
                self._serve_probe(self.plane.health_check)
            elif path == "/readyz":
                self._serve_probe(self.plane.ready_check)
            elif path == "/status":
                snapshot = self.plane.status.snapshot()
                snapshot["sse"] = self.plane.bus.stats()
                self._respond_json(200, snapshot)
            elif path == "/runs":
                self._serve_runs(query)
            elif path == "/alerts":
                self._serve_alerts()
            elif path == "/events":
                self._serve_events()
            elif path == "/":
                self._respond_text(
                    200,
                    "repro observability plane\n"
                    "endpoints: /metrics /healthz /readyz /status /runs "
                    "/alerts /events\n",
                )
            else:
                self._respond_text(404, f"unknown path {path}\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    # -- endpoints ---------------------------------------------------------

    def _serve_metrics(self) -> None:
        text = self.plane.metrics_text()
        self._respond(
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _serve_runs(self, query: str) -> None:
        source = self.plane.runs_source
        if source is None:
            self._respond_text(404, "no run ledger attached\n")
            return
        limit: Optional[int] = None
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "limit":
                try:
                    limit = max(0, int(value))
                except ValueError:
                    self._respond_text(400, f"bad limit {value!r}\n")
                    return
        document = source()
        if limit is not None and isinstance(document.get("runs"), list):
            document = dict(document)
            document["runs"] = document["runs"][:limit]
        self._respond_json(200, document)

    def _serve_alerts(self) -> None:
        source = self.plane.alerts_source
        if source is None:
            self._respond_text(404, "no alert rules attached\n")
            return
        self._respond_json(200, source())

    def _serve_probe(self, check: Callable[[], Tuple[bool, str]]) -> None:
        try:
            ok, reason = check()
        except Exception as error:  # a broken probe is an unhealthy probe
            ok, reason = False, f"probe raised {error!r}"
        if ok:
            self._respond_text(200, "ok\n")
        else:
            self._respond_text(503, f"unavailable: {reason}\n")

    def _serve_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, so the
        # connection (not keep-alive framing) delimits the body.
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(b": stream open\n\n")
        self.wfile.flush()
        with self.plane.bus.subscribe() as subscription:
            while not self.plane.stopping.is_set():
                event = subscription.get(timeout=KEEPALIVE_SECONDS)
                if event is None:
                    self.wfile.write(b": keepalive\n\n")
                else:
                    data = json.dumps(event)
                    frame = (
                        f"event: {event['type']}\n"
                        f"id: {event['seq']}\n"
                        f"data: {data}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()


def _default_health() -> Tuple[bool, str]:
    return True, ""


class ObservabilityServer:
    """The HTTP plane, served from a daemon thread.

    Parameters
    ----------
    metrics_text:
        Zero-argument callable returning the Prometheus exposition
        body (typically ``registry.to_prometheus``, wrapped in a lock
        when other threads mutate the registry).
    status:
        The :class:`StatusBoard` behind ``GET /status``.
    bus:
        The :class:`EventBus` behind ``GET /events``.
    health_check / ready_check:
        Zero-argument callables returning ``(ok, reason)``; failures
        surface as 503 with the reason in the body.
    runs_source:
        Zero-argument callable returning the ``repro-ledger/1`` runs
        document behind ``GET /runs`` (typically a fresh
        :func:`repro.provenance.runs_document` over the ledger file,
        re-read per request so concurrent appenders show up). ``None``
        leaves the endpoint 404.
    alerts_source:
        Zero-argument callable returning the ``repro-alerts/1`` alert
        document behind ``GET /alerts`` (typically an
        :class:`~repro.health.alerts.AlertManager`'s ``document``
        bound method). ``None`` leaves the endpoint 404.
    """

    def __init__(
        self,
        metrics_text: Optional[Callable[[], str]] = None,
        status: Optional[StatusBoard] = None,
        bus: Optional[EventBus] = None,
        health_check: Optional[Callable[[], Tuple[bool, str]]] = None,
        ready_check: Optional[Callable[[], Tuple[bool, str]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        runs_source: Optional[Callable[[], dict]] = None,
        alerts_source: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.metrics_text = metrics_text or (lambda: "")
        self.status = status if status is not None else StatusBoard()
        self.bus = bus if bus is not None else EventBus()
        self.health_check = health_check or _default_health
        self.ready_check = ready_check or _default_health
        self.runs_source = runs_source
        self.alerts_source = alerts_source
        self._host = host
        self._requested_port = port
        self.stopping = threading.Event()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, port)."""
        if self._httpd is not None:
            raise ConfigurationError("observability server already started")
        handler = type("_BoundHandler", (_Handler,), {"plane": self})
        try:
            self._httpd = ThreadingHTTPServer(
                (self._host, self._requested_port), handler
            )
        except OSError as error:
            raise ConfigurationError(
                f"cannot bind observability server on "
                f"{self._host}:{self._requested_port}: {error}"
            ) from error
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-observability",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        """Stop serving; idempotent. SSE streams close on their next tick."""
        self.stopping.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- address -----------------------------------------------------------

    @property
    def host(self) -> str:
        if self._httpd is not None:
            return self._httpd.server_address[0]
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after ``start``)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
