"""ServeHook: the bridge from the simulation loop to the HTTP plane.

A :class:`~repro.engine.hooks.PhaseHook` that feeds a live run's
progress into the :class:`~repro.observability.server.StatusBoard`
(``GET /status`` / ``repro top``), the
:class:`~repro.observability.server.EventBus` (``GET /events``), and —
optionally — gauge metrics (``GET /metrics``).

Hot-loop discipline: ``on_phase`` appends one float to a bounded deque
and reads the monotonic clock once; everything else (percentiles,
status snapshots, SSE publishing) happens at most once per
``publish_interval`` seconds, on the simulation thread. Per-population
kernel spans cost the simulator extra clock reads, so they are opt-in
(``population_spans=True``); without them the per-population view
falls back to neuron counts scaled by the run's steps/sec, which is
exact for the fixed-work-per-step phases this simulator runs.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict

from repro.engine.hooks import PHASES, PhaseHook

__all__ = ["ServeHook"]

#: Per-phase rolling window of recent durations (events, not seconds).
DEFAULT_WINDOW = 240

#: Seconds between status/SSE publishes.
DEFAULT_PUBLISH_INTERVAL = 0.25


def _percentile_us(durations, q: float) -> float:
    """The q-quantile of a small duration window, in microseconds."""
    if not durations:
        return 0.0
    ordered = sorted(durations)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index] * 1e6


class ServeHook(PhaseHook):
    """Publishes live run progress to a status board and event bus."""

    def __init__(
        self,
        status,
        bus,
        metrics=None,
        publish_interval: float = DEFAULT_PUBLISH_INTERVAL,
        window: int = DEFAULT_WINDOW,
        population_spans: bool = False,
    ) -> None:
        self.status = status
        self.bus = bus
        self.metrics = metrics
        self.publish_interval = publish_interval
        #: Instance-level opt-in: the simulator only times per-population
        #: kernel spans when a hook overriding ``on_population`` also
        #: wants them (see ``Simulator._hook_dispatch``).
        self.wants_population_spans = population_spans
        self._window = window
        self._phase_durations: Dict[str, Deque[float]] = {
            phase: deque(maxlen=window) for phase in PHASES
        }
        self._population_durations: Dict[str, Deque[float]] = {}
        self._population_sizes: Dict[str, int] = {}
        self._last_publish = 0.0
        self._window_anchor = 0.0
        self._window_steps = 0
        self._current_step = 0
        self._run_steps = 0
        self._steps_per_sec = 0.0

    # -- PhaseHook callbacks ----------------------------------------------

    def on_run_start(self, network, n_steps: int) -> None:
        now = time.monotonic()
        self._window_anchor = now
        self._last_publish = now
        self._window_steps = 0
        self._run_steps = 0
        self._population_sizes = {
            name: population.n
            for name, population in network.populations.items()
        }
        self.status.update(
            state="running",
            network=network.name,
            n_steps_planned=n_steps,
            n_neurons=network.n_neurons,
            n_synapses=network.n_synapses,
            populations={
                name: {"neurons": n}
                for name, n in self._population_sizes.items()
            },
        )
        self.bus.publish(
            "run-start",
            {"network": network.name, "n_steps": n_steps},
        )

    def on_step_start(self, step: int) -> None:
        self._current_step = step

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        self._phase_durations[phase].append(seconds)
        if phase != PHASES[-1]:
            return
        # The synapse phase closes a step; throttle everything beyond
        # the deque append to the publish interval.
        self._window_steps += 1
        self._run_steps += 1
        now = time.monotonic()
        if now - self._last_publish < self.publish_interval:
            return
        self._publish(now, step)

    def on_population(
        self, population: str, step: int, seconds: float, operations: int
    ) -> None:
        durations = self._population_durations.get(population)
        if durations is None:
            durations = deque(maxlen=self._window)
            self._population_durations[population] = durations
        durations.append(seconds)

    def on_run_end(self, result) -> None:
        self._publish(time.monotonic(), self._current_step)
        self.status.update(
            state="finished",
            total_spikes=result.total_spikes(),
            total_seconds=result.total_seconds,
        )
        self.bus.publish(
            "run-end",
            {
                "network": result.network_name,
                "steps": result.n_steps,
                "total_spikes": result.total_spikes(),
            },
        )

    # -- publishing (throttled) -------------------------------------------

    def _publish(self, now: float, step: int) -> None:
        elapsed = now - self._window_anchor
        if elapsed > 0 and self._window_steps > 0:
            self._steps_per_sec = self._window_steps / elapsed
        self._window_anchor = now
        self._window_steps = 0
        self._last_publish = now

        phases = {
            name: {
                "p50_us": _percentile_us(durations, 0.50),
                "p95_us": _percentile_us(durations, 0.95),
            }
            for name, durations in self._phase_durations.items()
        }
        populations: Dict[str, dict] = {}
        for name, n in self._population_sizes.items():
            entry: Dict[str, float] = {
                "neurons": n,
                # Fixed work per step: every neuron updates every step,
                # so ops/sec is exactly n x the run's step rate.
                "ops_per_sec": n * self._steps_per_sec,
            }
            spans = self._population_durations.get(name)
            if spans:
                entry["p50_us"] = _percentile_us(spans, 0.50)
                entry["p95_us"] = _percentile_us(spans, 0.95)
            populations[name] = entry

        self.status.update(
            current_step=step,
            steps_per_sec=self._steps_per_sec,
            phases=phases,
            populations=populations,
        )
        self.bus.publish(
            "progress",
            {
                "step": step,
                "steps_per_sec": round(self._steps_per_sec, 3),
            },
        )
        if self.metrics is not None:
            self.metrics.gauge(
                "run_current_step", "Latest simulated step index."
            ).set(step)
            self.metrics.gauge(
                "run_steps_per_sec",
                "Simulation throughput over the recent window.",
            ).set(self._steps_per_sec)

    # -- introspection (tests, repro top) ---------------------------------

    @property
    def steps_per_sec(self) -> float:
        return self._steps_per_sec
