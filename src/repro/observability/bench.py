"""Bench regression tracking: ``BENCH_history.jsonl`` and ``--compare``.

The repo ships point-in-time baselines (``BENCH_engine.json``,
``BENCH_profile.json``) but no *history* — so a change that quietly
costs 20 % steps/sec ships silently unless someone happens to diff two
exports by hand. ``repro bench`` closes that gap:

* every run appends one timestamped JSONL record (schema
  ``repro-bench/1``) to ``BENCH_history.jsonl`` — one line per bench,
  append-only, trivially diffable and greppable;
* ``repro bench --compare`` measures first, then compares each
  workload's steps/sec against the **best prior** record for the same
  (workload, backend) pair — history plus, for the reference backend,
  the committed ``BENCH_engine.json`` seed — and exits non-zero when
  the regression exceeds the threshold (default 15 %, the guard band
  between benign scheduler noise and a real slowdown);
* comparison against the *best* prior (not the latest) means a slow
  CI host cannot ratchet the baseline down over time.

The file is rewritten atomically on append (read + append + rename via
``repro.io``): a bench killed mid-write leaves the previous history
intact, never a torn line.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.io import atomic_write_text
from repro.observability.log import new_run_id

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_PLASTICITY_WORKLOADS",
    "DEFAULT_THRESHOLD",
    "append_history",
    "best_prior",
    "compare_record",
    "engine_seed_baselines",
    "load_history",
    "make_plasticity_record",
    "make_record",
    "make_sharding_record",
    "measure_plasticity",
    "measure_sharding",
    "measure_workload",
]

BENCH_SCHEMA = "repro-bench/1"
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: Fractional steps/sec loss vs. the best prior record that fails
#: ``--compare``.
DEFAULT_THRESHOLD = 0.15


# -- measurement -----------------------------------------------------------


def measure_workload(
    name: str,
    backend: str = "reference",
    steps: int = 400,
    scale: float = 0.05,
    seed: int = 5,
    reps: int = 3,
) -> dict:
    """Steps/sec of one workload (median of ``reps``, warm-cache).

    Mirrors ``benchmarks/export.py``'s methodology — warm-up run, then
    the median of three timed reps — so history records compare
    apples-to-apples with the committed ``BENCH_engine.json`` seed.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    from repro.network.simulator import Simulator
    from repro.telemetry.profile import _make_backend
    from repro.workloads import build_workload, get_spec
    from repro.workloads.builders import DT

    spec = get_spec(name)
    network = build_workload(name, scale=scale, seed=seed)
    simulator = Simulator(
        network, _make_backend(backend, spec.solver, DT), dt=DT, seed=seed + 1
    )
    simulator.run(min(20, steps))  # warm-up: lazy plan binding, caches
    samples: List[float] = []
    for _ in range(reps):
        start = time.perf_counter()
        result = simulator.run(steps, record_spikes=False)
        samples.append(steps / (time.perf_counter() - start))
    samples.sort()
    median = samples[len(samples) // 2]
    return {
        "steps_per_sec": median,
        "neurons": network.n_neurons,
        "neuron_updates_per_sec": median * network.n_neurons,
        "backend": result.backend_name,
        "reps": samples,
    }


def make_record(
    workloads: Sequence[str],
    backend: str = "reference",
    steps: int = 400,
    scale: float = 0.05,
    seed: int = 5,
    reps: int = 3,
    progress=None,
    run_id: str = "",
) -> dict:
    """Measure several workloads into one ``repro-bench/1`` record.

    ``run_id`` correlates the record with the provenance ledger and
    any other artifact of the same invocation (minted when empty).
    """
    entries: Dict[str, dict] = {}
    for name in workloads:
        entries[name] = measure_workload(
            name, backend=backend, steps=steps, scale=scale,
            seed=seed, reps=reps,
        )
        if progress is not None:
            progress(
                f"{name:20s} {entries[name]['steps_per_sec']:10.1f} steps/s "
                f"({entries[name]['neurons']:,} neurons)"
            )
    return {
        "schema": BENCH_SCHEMA,
        "run_id": run_id or new_run_id(),
        "ts": time.time(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "backend": backend,
        "steps": steps,
        "scale": scale,
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": entries,
    }


# -- plasticity overhead ---------------------------------------------------

#: Workloads the plasticity bench runs by default: the ISSUE's Brunel
#: and Vogels networks — one current-based, one conductance-based E/I
#: recipe, at usefully different firing rates.
DEFAULT_PLASTICITY_WORKLOADS = ("Brunel", "Vogels et al.")

#: Marks a history record as a plasticity-overhead measurement. Such
#: records keep ``workloads`` empty so throughput comparison
#: (:func:`best_prior` / :func:`compare_record`) never mixes a
#: plasticity-on run into the plain steps/sec baseline.
PLASTICITY_KIND = "plasticity"


def _plastic_projection(network):
    """The projection the bench makes plastic: exc->exc when the
    standard E/I recipe built the network, else the first projection
    that actually has synapses."""
    for projection in network.projections:
        if projection.pre.name == "exc" and projection.post.name == "exc":
            return projection
    for projection in network.projections:
        if projection.n_synapses:
            return projection
    raise ConfigurationError(
        f"network {network.name!r} has no synapses to make plastic"
    )


def measure_plasticity(
    name: str,
    steps: int = 300,
    scale: float = 0.05,
    seed: int = 5,
    reps: int = 1,
) -> dict:
    """Plasticity-on vs plasticity-off overhead of one workload.

    Runs the workload three times from identical initial conditions:
    with no plasticity, with lazy (deferred) :class:`PairSTDP` on the
    recurrent excitatory projection, and with the dense reference
    schedule (``deferred=False``). The lazy and dense modes share the
    same analytic event arithmetic, so their spike digests must match
    bit-for-bit — the entry records both digests and the comparison,
    which the CLI turns into an exit code.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    from repro.network.simulator import Simulator
    from repro.plasticity.stdp import PairSTDP
    from repro.supervision.job import spike_digest
    from repro.telemetry.profile import _make_backend
    from repro.workloads import build_workload, get_spec
    from repro.workloads.builders import DT

    spec = get_spec(name)

    def run_mode(mode: str):
        network = build_workload(name, scale=scale, seed=seed)
        rule = None
        if mode != "off":
            rule = PairSTDP(deferred=(mode == "lazy"))
            network.add_plasticity(_plastic_projection(network), rule)
        simulator = Simulator(
            network,
            _make_backend("reference", spec.solver, DT),
            dt=DT,
            seed=seed + 1,
        )
        start = time.perf_counter()
        result = simulator.run(steps)
        elapsed = time.perf_counter() - start
        return steps / elapsed, result, rule

    modes: Dict[str, dict] = {}
    for mode in ("off", "lazy", "eager"):
        samples: List[float] = []
        result = rule = None
        for _ in range(reps):
            steps_per_sec, result, rule = run_mode(mode)
            samples.append(steps_per_sec)
        samples.sort()
        entry = {
            "steps_per_sec": samples[len(samples) // 2],
            "reps": samples,
            "total_spikes": result.total_spikes(),
            "digest": spike_digest(result.spikes),
        }
        if rule is not None:
            entry.update(
                deferred_updates=rule.deferred_updates,
                applied_updates=rule.applied_updates,
                trace_refreshes=rule.trace_refreshes,
                n_plastic_synapses=rule.projection.n_synapses,
            )
        modes[mode] = entry

    off = modes["off"]["steps_per_sec"]
    return {
        "steps": steps,
        "spikes_per_step": modes["off"]["total_spikes"] / steps,
        "modes": modes,
        # (time_with - time_without) / time_without, from steps/sec
        "overhead_lazy": off / modes["lazy"]["steps_per_sec"] - 1.0,
        "overhead_eager": off / modes["eager"]["steps_per_sec"] - 1.0,
        "digest_match": modes["lazy"]["digest"] == modes["eager"]["digest"],
    }


def make_plasticity_record(
    workloads: Sequence[str] = DEFAULT_PLASTICITY_WORKLOADS,
    steps: int = 300,
    scale: float = 0.05,
    seed: int = 5,
    reps: int = 1,
    progress=None,
    run_id: str = "",
) -> dict:
    """Measure plasticity overhead into one ``repro-bench/1`` record.

    The record carries ``kind: "plasticity"`` and its measurements
    under ``plasticity`` (with ``workloads`` left empty), so it rides
    the same append-only history file without ever becoming a
    throughput baseline for ``--compare``.
    """
    entries: Dict[str, dict] = {}
    for name in workloads:
        entries[name] = measure_plasticity(
            name, steps=steps, scale=scale, seed=seed, reps=reps
        )
        if progress is not None:
            entry = entries[name]
            progress(
                f"{name:20s} lazy {100 * entry['overhead_lazy']:+6.1f}%  "
                f"dense {100 * entry['overhead_eager']:+6.1f}%  "
                f"({entry['spikes_per_step']:.1f} spikes/step, digests "
                f"{'match' if entry['digest_match'] else 'DIFFER'})"
            )
    return {
        "schema": BENCH_SCHEMA,
        "kind": PLASTICITY_KIND,
        "run_id": run_id or new_run_id(),
        "ts": time.time(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "backend": "reference",
        "steps": steps,
        "scale": scale,
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
        "plasticity": entries,
    }


# -- sharding scaling ------------------------------------------------------

#: Marks a history record as a sharded-scaling measurement. Like
#: plasticity records, ``workloads`` stays empty so throughput
#: comparison never treats a multi-process run as a steps/sec baseline.
SHARDING_KIND = "sharding"


def measure_sharding(
    name: str,
    shard_counts: Sequence[int],
    steps: int = 300,
    scale: float = 0.05,
    seed: int = 5,
    barrier_timeout: float = 60.0,
) -> dict:
    """Wall time + digest parity of one workload across shard counts.

    Runs the workload once single-process (the digest oracle and the
    1-shard wall-time baseline), then once per requested shard count
    through the real process-backed :class:`ShardCoordinator`. Every
    sharded digest must equal the single-process digest bit-for-bit —
    the entry records each comparison and an overall ``digest_match``
    the CLI turns into an exit code. Speedup is *not* asserted: at
    bench scales the barrier traffic usually dominates, and the record
    exists to track the trend, not to gate on it.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    for count in shard_counts:
        if count < 2:
            raise ConfigurationError(
                f"shard counts must be >= 2, got {count}"
            )
    from repro.network.simulator import Simulator
    from repro.sharding import ShardCoordinator
    from repro.supervision import JobSpec, spike_digest
    from repro.telemetry.profile import _make_backend
    from repro.workloads import build_workload, get_spec
    from repro.workloads.builders import DT

    spec = get_spec(name)
    network = build_workload(name, scale=scale, seed=seed)
    simulator = Simulator(
        network, _make_backend("reference", spec.solver, DT),
        dt=DT, seed=seed + 1,
    )
    start = time.perf_counter()
    result = simulator.run(steps)
    single_wall = time.perf_counter() - start
    baseline = spike_digest(result.spikes)

    entry = {
        "steps": steps,
        "neurons": network.n_neurons,
        "single_wall_seconds": single_wall,
        "single_digest": baseline,
        "shards": {},
        "digest_match": True,
    }
    for count in shard_counts:
        job = JobSpec(
            name=f"bench-{name}-x{count}", workload=name,
            backend="reference", steps=steps, scale=scale,
            seed=seed, shards=count,
        )
        sharded = ShardCoordinator(
            job, barrier_timeout=barrier_timeout
        ).run()
        match = sharded.spike_digest == baseline
        entry["shards"][str(count)] = {
            "wall_seconds": sharded.wall_seconds,
            "speedup": single_wall / sharded.wall_seconds,
            "digest": sharded.spike_digest,
            "digest_match": match,
            "restarts": sum(sharded.restarts),
            "degraded": sharded.degraded,
        }
        if not match or sharded.degraded:
            entry["digest_match"] = False
    return entry


def make_sharding_record(
    workloads: Sequence[str],
    shard_counts: Sequence[int],
    steps: int = 300,
    scale: float = 0.05,
    seed: int = 5,
    progress=None,
    run_id: str = "",
) -> dict:
    """Measure sharded scaling into one ``repro-bench/1`` record.

    The record carries ``kind: "sharding"`` with measurements under
    ``sharding`` (``workloads`` left empty), riding the append-only
    history without polluting the throughput baselines.
    """
    entries: Dict[str, dict] = {}
    for name in workloads:
        entries[name] = measure_sharding(
            name, shard_counts, steps=steps, scale=scale, seed=seed
        )
        if progress is not None:
            entry = entries[name]
            for count, shard in entry["shards"].items():
                progress(
                    f"{name:20s} x{count}: {shard['wall_seconds']:6.2f}s "
                    f"(speedup {shard['speedup']:.2f}x, digest "
                    f"{'match' if shard['digest_match'] else 'DIFFER'})"
                )
    return {
        "schema": BENCH_SCHEMA,
        "kind": SHARDING_KIND,
        "run_id": run_id or new_run_id(),
        "ts": time.time(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "backend": "reference",
        "steps": steps,
        "scale": scale,
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {},
        "sharding": entries,
    }


# -- history ---------------------------------------------------------------


def load_history(path: str) -> List[dict]:
    """Read every ``repro-bench/1`` record from a JSONL history file.

    Missing file means empty history. Lines that do not parse or carry
    a different schema are skipped — the history is an append-only
    artifact shared across branches, and one bad line must not brick
    regression tracking.
    """
    if not os.path.exists(path):
        return []
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("schema") == BENCH_SCHEMA:
                records.append(record)
    return records


def append_history(path: str, record: dict) -> None:
    """Append one record to the JSONL history, atomically.

    Read-append-rename rather than ``open(..., "a")``: a kill mid-write
    can never leave a torn trailing line for :func:`load_history` to
    trip over.
    """
    existing = ""
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            existing = handle.read()
        if existing and not existing.endswith("\n"):
            existing += "\n"
    atomic_write_text(
        path, existing + json.dumps(record, sort_keys=True) + "\n"
    )


# -- comparison ------------------------------------------------------------


def engine_seed_baselines(
    path: str = "BENCH_engine.json", scale: Optional[float] = None
) -> Dict[str, float]:
    """Per-workload reference-backend steps/sec from ``BENCH_engine.json``.

    The committed engine export is the genesis record: before any
    history exists, ``--compare`` still has a floor to hold. Only the
    ``reference-engine`` entry maps onto ``repro bench``'s default
    reference backend; other backends start tracking from their first
    history record. When ``scale`` is given and differs from the
    export's, the seed is withheld — throughput at different network
    scales is not comparable.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    if scale is not None and payload.get("scale") != scale:
        return {}
    baselines: Dict[str, float] = {}
    for name, entry in payload.get("workloads", {}).items():
        engine = entry.get("reference-engine")
        if isinstance(engine, (int, float)):
            baselines[name] = float(engine)
        elif isinstance(engine, dict) and "steps_per_sec" in engine:
            baselines[name] = float(engine["steps_per_sec"])
    return baselines


def best_prior(
    history: Sequence[dict],
    workload: str,
    backend: str,
    engine_seed: Optional[Dict[str, float]] = None,
    scale: Optional[float] = None,
) -> Optional[float]:
    """Best prior steps/sec for (workload, backend), or ``None``.

    Only records at the same ``scale`` compete (when given): a network
    ten times larger steps slower by construction, not by regression.
    """
    best: Optional[float] = None
    for record in history:
        if record.get("backend") != backend:
            continue
        if scale is not None and record.get("scale") != scale:
            continue
        entry = record.get("workloads", {}).get(workload)
        if not isinstance(entry, dict):
            continue
        value = entry.get("steps_per_sec")
        if isinstance(value, (int, float)):
            best = value if best is None else max(best, value)
    if backend == "reference" and engine_seed:
        seeded = engine_seed.get(workload)
        if seeded is not None:
            best = seeded if best is None else max(best, seeded)
    return best


def compare_record(
    record: dict,
    history: Sequence[dict],
    threshold: float = DEFAULT_THRESHOLD,
    engine_seed: Optional[Dict[str, float]] = None,
) -> Tuple[bool, List[str]]:
    """Compare one fresh record against the best prior per workload.

    Returns ``(ok, lines)``: ``ok`` is False when any workload
    regressed more than ``threshold``; ``lines`` describe every
    comparison (regressions, improvements, and first-record seeds).
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(
            f"threshold must be in (0, 1), got {threshold}"
        )
    ok = True
    lines: List[str] = []
    backend = record.get("backend", "reference")
    scale = record.get("scale")
    for name, entry in record.get("workloads", {}).items():
        current = entry["steps_per_sec"]
        baseline = best_prior(history, name, backend, engine_seed, scale)
        if baseline is None or baseline <= 0:
            lines.append(
                f"{name}: {current:.1f} steps/s — no prior record; "
                f"this run seeds the baseline"
            )
            continue
        delta = current / baseline - 1.0
        verdict = "ok"
        if delta < -threshold:
            ok = False
            verdict = f"REGRESSION (> {100 * threshold:.0f}% loss)"
        lines.append(
            f"{name}: {current:.1f} steps/s vs best {baseline:.1f} "
            f"({100 * delta:+.1f}%) — {verdict}"
        )
    return ok, lines
