"""The observability plane: live insight into running simulations.

The paper's core claim is throughput, yet until this layer every
observation the reproduction made was post-hoc: ``MetricsRegistry``
snapshots, trace files, and sweep reports written after the run ended.
A long supervised sweep was a black box while it executed. This
package turns the existing telemetry and supervision seams into a live
serving-style plane (see DESIGN.md's "Observability plane"):

* :mod:`repro.observability.server` — a dependency-free stdlib HTTP
  server exposing ``GET /metrics`` (Prometheus text exposition),
  ``GET /healthz`` / ``GET /readyz``, ``GET /status`` (JSON snapshot),
  and ``GET /events`` (an SSE stream, schema ``repro-events/1``),
  plus the :class:`~repro.observability.server.EventBus` and
  :class:`~repro.observability.server.StatusBoard` the endpoints read;
* :mod:`repro.observability.log` — structured JSON logging (schema
  ``repro-log/1``) with run/job/attempt correlation IDs, threaded
  supervisor → worker over the existing pipe wire protocol so worker
  records aggregate into one ordered stream;
* :mod:`repro.observability.recorder` — the crash flight recorder: a
  bounded ring of recent events per worker, dumped into the
  ``AttemptReport`` on timeout/crash/numerics failure (schema
  ``repro-flight/1``);
* :mod:`repro.observability.hooks` — :class:`ServeHook`, the
  :class:`~repro.engine.hooks.PhaseHook` that feeds a live run's
  progress into the status board, the event bus, and the metrics
  registry without taxing the hot loop when idle;
* :mod:`repro.observability.top` — the ``repro top`` console view of
  the ``/status`` + ``/events`` feed;
* :mod:`repro.observability.bench` — bench regression tracking:
  ``BENCH_history.jsonl`` append + compare-against-best (``repro
  bench --compare`` exits non-zero on a >15 % steps/sec regression).

The ``top`` and ``bench`` modules pull in the workload registry and
``urllib``, so the CLI imports them lazily rather than here.
"""

from repro.observability.hooks import ServeHook
from repro.observability.log import (
    LOG_SCHEMA,
    StructuredLogger,
    log_stream_document,
    merge_records,
    new_run_id,
)
from repro.observability.recorder import FLIGHT_SCHEMA, FlightRecorder
from repro.observability.server import (
    EVENTS_SCHEMA,
    EventBus,
    ObservabilityServer,
    StatusBoard,
    parse_serve_spec,
)

__all__ = [
    "EVENTS_SCHEMA",
    "EventBus",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "LOG_SCHEMA",
    "ObservabilityServer",
    "ServeHook",
    "StatusBoard",
    "StructuredLogger",
    "log_stream_document",
    "merge_records",
    "new_run_id",
    "parse_serve_spec",
]
