"""``repro top``: a live console view of a serving run or sweep.

Polls ``GET /status`` on an observability server (started via ``repro
serve`` or ``--serve`` on ``repro run`` / ``repro sweep``) and renders
a refreshing console dashboard: run state and throughput, per-phase
p50/p95, per-population ops/sec, for sweeps the per-job worker states,
attempts, retries, and breaker trips, plus the health layer's alert
pane and the event bus's publish/drop accounting.

Rendering is a pure function of the status document
(:func:`format_top`), so the view is testable without a server; the
CLI loop around it is just fetch → clear → print → sleep. ``--once``
prints a single snapshot and exits (CI-friendly).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import ReproError

__all__ = ["fetch_status", "format_top", "run_top"]

#: ANSI clear-screen + cursor-home (what ``watch`` emits per frame).
CLEAR = "\x1b[2J\x1b[H"


def fetch_status(url: str, timeout: float = 5.0) -> dict:
    """GET ``<url>/status`` and parse the JSON document."""
    target = url.rstrip("/") + "/status"
    try:
        with urllib.request.urlopen(target, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ReproError(
            f"cannot fetch {target!r}: {error}"
        ) from error


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


def format_top(status: dict) -> str:
    """Render one ``/status`` snapshot as a console dashboard."""
    lines = []
    state = status.get("state", "unknown")
    network = status.get("network") or status.get("sweep") or "?"
    header = f"repro top — {network} [{state}]"
    lines.append(header)
    lines.append("=" * len(header))

    step = status.get("current_step")
    planned = status.get("n_steps_planned")
    sps = status.get("steps_per_sec")
    if step is not None:
        progress = f"step {step:,}"
        if planned:
            progress += f" / {planned:,} ({100.0 * step / planned:5.1f}%)"
        if sps is not None:
            progress += f"   {sps:,.1f} steps/s"
        lines.append(progress)

    phases = status.get("phases") or {}
    if phases:
        lines.append("")
        lines.append(f"{'phase':<12} {'p50':>10} {'p95':>10}")
        for name, entry in phases.items():
            lines.append(
                f"{name:<12} {entry.get('p50_us', 0.0):>8.1f}us "
                f"{entry.get('p95_us', 0.0):>8.1f}us"
            )

    populations = status.get("populations") or {}
    if populations:
        lines.append("")
        lines.append(
            f"{'population':<14} {'neurons':>9} {'ops/s':>9} "
            f"{'p50':>10} {'p95':>10}"
        )
        for name, entry in sorted(populations.items()):
            p50 = entry.get("p50_us")
            p95 = entry.get("p95_us")
            lines.append(
                f"{name:<14} {entry.get('neurons', 0):>9,} "
                f"{_fmt_rate(entry.get('ops_per_sec', 0.0)):>9} "
                + (f"{p50:>8.1f}us " if p50 is not None else f"{'-':>10} ")
                + (f"{p95:>8.1f}us" if p95 is not None else f"{'-':>10}")
            )

    jobs = status.get("jobs") or {}
    if jobs:
        lines.append("")
        lines.append(
            f"{'job':<22} {'state':<12} {'backend':<10} {'attempt':>7} "
            f"{'step':>8} {'retries':>7}"
        )
        for name, entry in sorted(jobs.items()):
            lines.append(
                f"{name:<22} {entry.get('state', '?'):<12} "
                f"{entry.get('backend', '?'):<10} "
                f"{entry.get('attempt', 0) + 1:>7} "
                f"{entry.get('step', 0):>8,} "
                f"{entry.get('retries', 0):>7}"
            )
        totals = status.get("sweep_totals") or {}
        if totals:
            lines.append(
                f"jobs {totals.get('completed', 0)}/{totals.get('total', 0)} "
                f"done, {totals.get('failed', 0)} failed, "
                f"{totals.get('retries', 0)} retries, "
                f"{totals.get('breaker_trips', 0)} breaker trip(s)"
            )

    alerts = status.get("alerts") or {}
    if alerts:
        lines.append("")
        lines.append(
            f"alerts: {alerts.get('firing', 0)} firing, "
            f"{alerts.get('pending', 0)} pending, "
            f"{alerts.get('resolved', 0)} resolved "
            f"({alerts.get('rules', 0)} rule(s))"
        )
        for active in alerts.get("active") or []:
            lines.append(f"  ! {active}")

    sse = status.get("sse") or {}
    if sse:
        lines.append("")
        lines.append(
            f"sse: {sse.get('subscribers', 0)} subscriber(s), "
            f"{sse.get('published_total', 0)} event(s) published, "
            f"{sse.get('dropped_events_total', 0)} dropped"
        )

    updated = status.get("updated_ts")
    if updated:
        age = max(0.0, time.time() - updated)
        lines.append("")
        lines.append(f"updated {age:.1f}s ago")
    return "\n".join(lines)


def run_top(
    url: str,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream=None,
    clear: bool = True,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``iterations=None`` refreshes until interrupted; ``iterations=1``
    is the ``--once`` mode. A fetch failure after a first successful
    frame ends the loop cleanly (the server finished and went away).
    """
    stream = stream if stream is not None else sys.stdout
    seen_one = False
    count = 0
    while iterations is None or count < iterations:
        try:
            status = fetch_status(url)
        except ReproError:
            if seen_one:
                print("server went away; exiting", file=stream)
                return 0
            raise
        frame = format_top(status)
        if clear and seen_one:
            stream.write(CLEAR)
        stream.write(frame + "\n")
        stream.flush()
        seen_one = True
        count += 1
        if iterations is not None and count >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
    return 0
