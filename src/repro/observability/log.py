"""Structured JSON logging with run/job/attempt correlation IDs.

A supervised sweep spans one supervisor and many spawned worker
processes; with plain ``print`` their output interleaves on stderr and
any context (which job? which attempt?) is lost the moment the process
dies. This module gives every layer the same discipline:

* a log *record* is a flat JSON-serialisable dict — ``ts`` (Unix wall
  clock), ``seq`` (per-logger monotone tiebreaker), ``level``,
  ``event`` (a stable machine-readable name), ``message`` (the human
  line), plus whatever correlation context the logger was bound with
  (``run_id``/``job``/``attempt``/``pid``) and per-call fields;
* a :class:`StructuredLogger` is a bound context plus a list of
  *sinks* — callables fed each record as it is made. Sinks are how
  records travel: the worker's logger sinks into its flight recorder
  and the supervisor pipe; the supervisor's logger sinks into the
  sweep's shared stream and the event bus;
* :func:`merge_records` orders records from many processes into the
  one stream ``SweepReport.log_records`` exposes, and
  :func:`log_stream_document` wraps it in the ``repro-log/1`` schema
  that ``repro sweep --log-json`` writes.

Wall-clock ``ts`` is the cross-process ordering key (monotonic clocks
do not compare across processes); ``seq`` breaks ties within one
logger, and the (``pid``, ``seq``) pair makes every record unique.
"""

from __future__ import annotations

import os
import time
import uuid
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "LOG_LEVELS",
    "LOG_SCHEMA",
    "StructuredLogger",
    "log_stream_document",
    "merge_records",
    "new_run_id",
]

LOG_SCHEMA = "repro-log/1"

#: Severity order, least to most severe.
LOG_LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {level: rank for rank, level in enumerate(LOG_LEVELS)}


def new_run_id() -> str:
    """A fresh correlation ID for one run or sweep (``run-`` + 12 hex)."""
    return "run-" + uuid.uuid4().hex[:12]


class StructuredLogger:
    """A bound logging context fanning records out to sinks.

    Sinks must never make logging fail: a sink that raises is dropped
    for the rest of the logger's life (mirroring the simulator's
    hook-isolation semantics) rather than taking the run down with it.
    """

    def __init__(
        self,
        context: Optional[Dict[str, object]] = None,
        sinks: Sequence[Callable[[dict], None]] = (),
        level: str = "debug",
        _seq_start: int = 0,
    ) -> None:
        if level not in _LEVEL_RANK:
            raise ValueError(
                f"unknown log level {level!r} (choose from {LOG_LEVELS})"
            )
        self.context: Dict[str, object] = dict(context or {})
        self.context.setdefault("pid", os.getpid())
        self._sinks: List[Callable[[dict], None]] = list(sinks)
        self._min_rank = _LEVEL_RANK[level]
        self._seq = _seq_start

    # -- sinks -------------------------------------------------------------

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        self._sinks.append(sink)

    # -- record creation ---------------------------------------------------

    def log(self, level: str, event: str, message: str = "", **fields) -> Optional[dict]:
        """Make one record and feed it to every sink; returns the record.

        Returns ``None`` (and does nothing) when ``level`` is below the
        logger's threshold.
        """
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(
                f"unknown log level {level!r} (choose from {LOG_LEVELS})"
            )
        if rank < self._min_rank:
            return None
        record: Dict[str, object] = {
            "ts": time.time(),
            "seq": self._seq,
            "level": level,
            "event": event,
            "message": message,
        }
        self._seq += 1
        record.update(self.context)
        record.update(fields)
        for sink in list(self._sinks):
            try:
                sink(record)
            except Exception:
                self._sinks.remove(sink)
        return record

    def debug(self, event: str, message: str = "", **fields) -> Optional[dict]:
        return self.log("debug", event, message, **fields)

    def info(self, event: str, message: str = "", **fields) -> Optional[dict]:
        return self.log("info", event, message, **fields)

    def warning(self, event: str, message: str = "", **fields) -> Optional[dict]:
        return self.log("warning", event, message, **fields)

    def error(self, event: str, message: str = "", **fields) -> Optional[dict]:
        return self.log("error", event, message, **fields)

    def child(self, **context) -> "StructuredLogger":
        """A logger with extra bound context sharing this one's sinks.

        The child continues the parent's ``seq`` numbering start so two
        same-``ts`` records from one process still order sensibly, but
        each logger advances its own counter thereafter.
        """
        merged = dict(self.context)
        merged.update(context)
        return StructuredLogger(
            merged,
            sinks=self._sinks,
            level=LOG_LEVELS[self._min_rank],
            _seq_start=self._seq,
        )


def merge_records(*streams: Iterable[dict]) -> List[dict]:
    """Order records from many processes into one stream.

    Sorted by (``ts``, ``pid``, ``seq``): wall clock first (the only
    clock that compares across processes), then a stable per-process
    tiebreak — the sort is deterministic for any fixed input set.
    """
    merged: List[dict] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(
        key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0))
    )
    return merged


def log_stream_document(
    records: Sequence[dict], run_id: str = ""
) -> dict:
    """The ``repro-log/1`` document ``repro sweep --log-json`` writes."""
    document = {
        "schema": LOG_SCHEMA,
        "n_records": len(records),
        "records": list(records),
    }
    if run_id:
        document["run_id"] = run_id
    return document
