"""TraceHook: the simulator's event stream as a Chrome/Perfetto trace.

The :class:`~repro.engine.hooks.PhaseHook` stream already carries every
per-phase duration; this hook turns it — plus the per-population kernel
spans the simulator emits when a hook asks for them — into Trace Event
Format JSON that loads directly in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev). One run becomes a timeline: the three phases
on the "simulator" track, each population's neuron-kernel spans on its
own named track underneath.

The hot path stores only what the event stream hands it — a compact
``(kind, name, seconds, step, operations)`` tuple per span, no clock
reads of its own. Timestamps are *reconstructed at export time* by
laying the measured durations end to end (kernel spans inside their
step's neuron phase), so the timeline shows pure simulation compute;
bookkeeping gaps between phases (hook dispatch, recorder sampling,
queue rotation) are excluded by construction. Span durations are the
simulator's real wall-clock measurements.

Memory is bounded: events land in a ring buffer (default
:data:`DEFAULT_MAX_EVENTS`), so an arbitrarily long run keeps the most
recent window instead of growing without limit; ``dropped_events``
reports how much of the head was discarded.

Usage::

    trace = TraceHook()
    simulator.run(n_steps, hooks=[trace])
    trace.save("out.json")          # load this file in Perfetto

or from the CLI: ``python -m repro run Brunel --trace out.json``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.engine.hooks import PhaseHook

__all__ = ["DEFAULT_MAX_EVENTS", "TraceHook"]

#: Default ring-buffer capacity. Three phase events per step plus one
#: span per population per step; at ~5 events/step this keeps the last
#: ~40k steps of a run in roughly 20 MB of tuples.
DEFAULT_MAX_EVENTS = 200_000

#: The single trace "process" every track lives under.
_PID = 1
#: Track id of the three-phase simulator timeline.
_SIMULATOR_TID = 0

_PHASE = 0
_KERNEL = 1


class TraceHook(PhaseHook):
    """Records phase and per-population spans as Trace Event JSON.

    ``max_events`` bounds the ring buffer (``None`` = unbounded);
    ``populations`` controls whether per-population kernel spans are
    requested from the simulator (they add two clock reads per
    population per step).
    """

    def __init__(
        self,
        max_events: Optional[int] = DEFAULT_MAX_EVENTS,
        populations: bool = True,
        run_id: str = "",
    ) -> None:
        #: (kind, name, seconds, step, operations) compact records.
        self._events: Deque[Tuple[int, str, float, int, int]] = deque(
            maxlen=max_events
        )
        self._append = self._events.append
        self.max_events = max_events
        #: Total events offered, including ones the ring evicted.
        self.total_events = 0
        self._network_name = ""
        #: Provenance correlation id stamped into ``otherData`` (ties
        #: the trace artifact to its ledger entry; "" when untracked).
        self.run_id = run_id
        #: The simulator skips per-population timing when no attached
        #: hook wants spans, so ``populations=False`` costs nothing.
        self.wants_population_spans = populations

    # -- PhaseHook interface ----------------------------------------------

    def on_run_start(self, network, n_steps: int) -> None:
        self._network_name = getattr(network, "name", "")

    def on_phase(
        self, phase: str, step: int, seconds: float, operations: int
    ) -> None:
        self._append((_PHASE, phase, seconds, step, operations))

    def on_population(
        self, population: str, step: int, seconds: float, operations: int
    ) -> None:
        self._append((_KERNEL, population, seconds, step, operations))

    def on_run_end(self, result) -> None:
        # Lifetime accounting happens here, once per run, so the
        # per-event callbacks stay a single bounded append.
        self.total_events += result.n_steps * (
            3 + (len(result.evaluations_per_step) if self.wants_population_spans else 0)
        )

    # -- export ------------------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Events the ring buffer evicted (0 while within capacity).

        ``total_events`` is settled at run end, so mid-run (or after an
        aborted run) this can momentarily undercount; it is exact for
        completed runs.
        """
        return max(0, self.total_events - len(self._events))

    def to_trace_events(self) -> List[dict]:
        """The buffered spans as Trace Event Format dicts.

        Metadata (``ph: "M"``) events name the process and per-track
        threads so Perfetto renders labeled rows; every span is a
        complete (``ph: "X"``) event with microsecond timestamps laid
        out cumulatively (see module docstring).
        """
        spans: List[dict] = []
        tids: Dict[str, int] = {}
        now_us = 0.0
        #: Kernel events arrive before their step's neuron phase event;
        #: they are held here and placed once that phase anchors them.
        pending: List[Tuple[str, float, int, int]] = []

        def emit(name: str, tid: int, ts: float, dur: float, step: int,
                 operations: int, cat: str) -> None:
            spans.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "pid": _PID,
                    "tid": tid,
                    "ts": round(ts, 3),
                    "dur": round(dur, 3),
                    "args": {"step": step, "operations": operations},
                }
            )

        def flush_pending(start_us: float) -> None:
            cursor = start_us
            for population, seconds, step, operations in pending:
                tid = tids.get(population)
                if tid is None:
                    tid = len(tids) + 1
                    tids[population] = tid
                dur_us = seconds * 1e6
                emit(population, tid, cursor, dur_us, step, operations,
                     "kernel")
                cursor += dur_us
            pending.clear()

        for kind, name, seconds, step, operations in self._events:
            if kind == _KERNEL:
                pending.append((name, seconds, step, operations))
                continue
            if pending:
                # Kernel spans nest from the start of the phase that
                # contains them (always the neuron phase).
                flush_pending(now_us)
            dur_us = seconds * 1e6
            emit(name, _SIMULATOR_TID, now_us, dur_us, step, operations,
                 "phase")
            now_us += dur_us
        if pending:  # ring dropped the anchoring phase event
            flush_pending(now_us)

        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": _PID,
                "tid": _SIMULATOR_TID,
                "args": {"name": f"repro:{self._network_name or 'run'}"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": _SIMULATOR_TID,
                "args": {"name": "phases"},
            },
        ]
        for population, tid in sorted(tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": f"pop:{population}"},
                }
            )
        events.extend(spans)
        return events

    def trace_json(self) -> dict:
        """The full Trace Event JSON document (Perfetto-loadable)."""
        return {
            "traceEvents": self.to_trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "network": self._network_name,
                "run_id": self.run_id,
                "dropped_events": self.dropped_events,
            },
        }

    def save(self, path: str) -> None:
        """Write the trace document to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.trace_json(), handle)

    def phase_durations(self) -> Dict[str, List[float]]:
        """Buffered per-event durations (seconds) keyed by phase name."""
        out: Dict[str, List[float]] = {}
        for kind, name, seconds, _, _ in self._events:
            if kind == _PHASE:
                out.setdefault(name, []).append(seconds)
        return out

    def population_durations(self) -> Dict[str, List[float]]:
        """Buffered kernel-span durations (seconds) keyed by population."""
        out: Dict[str, List[float]] = {}
        for kind, name, seconds, _, _ in self._events:
            if kind == _KERNEL:
                out.setdefault(name, []).append(seconds)
        return out
