"""The ``repro profile`` harness: a reproducible perf trajectory.

Runs registry workloads repeatedly — once bare, once with *all*
telemetry attached (metrics registry, trace hook, per-population kernel
spans) — and reports:

* per-phase and per-population **p50/p95 wall time** (from the trace
  hook's per-event durations) and **ops/sec** (from the metrics
  registry's phase counters — the profiler dogfoods the layer it
  measures);
* **steps/sec** for the bare and instrumented runs (best of
  ABBA-interleaved reps, so host drift and position-in-pair bias hit
  both series alike and scheduler noise is suppressed);
* the **overhead delta** — the fractional steps/sec cost of enabling
  every telemetry feature at once. The acceptance budget is < 5 % on
  the Izhikevich workload; the command computes and self-reports the
  measured value, and a test pins it.

The machine-readable output (``BENCH_profile.json``) uses the same
top-level shape as ``benchmarks/export.py``'s ``BENCH_engine.json``
(``dt``/``steps``/``scale``/``python``/``machine``/``workloads``), so
both feed one perf-trajectory tooling path.
"""

from __future__ import annotations

import gc
import pathlib
import platform
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.io import atomic_write_json
from repro.network.simulator import Simulator
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import TraceHook
from repro.workloads import build_workload, get_spec

__all__ = [
    "DEFAULT_WORKLOADS",
    "PROFILE_SCHEMA",
    "format_profile",
    "profile_workload",
    "run_profile",
]

PROFILE_SCHEMA = "repro-profile/1"

#: Paper time step (matches ``repro.workloads.builders.DT``).
DT = 1e-4

#: Three Euler-solved Table I workloads spanning small/medium structure.
DEFAULT_WORKLOADS = ("Brunel", "Izhikevich", "Nowotny et al.")


def _make_backend(kind: str, solver: str, dt: float):
    if kind == "reference":
        from repro.network.backends import ReferenceBackend

        return ReferenceBackend(solver)
    if kind == "flexon":
        from repro.hardware.backend import FlexonBackend

        return FlexonBackend(dt)
    if kind == "folded":
        from repro.hardware.backend import FoldedFlexonBackend

        return FoldedFlexonBackend(dt)
    if kind == "event-driven":
        from repro.hardware.event_driven import EventDrivenFlexonBackend

        return EventDrivenFlexonBackend(dt)
    raise ConfigurationError(f"unknown profile backend {kind!r}")


def _percentiles_us(durations: Sequence[float]) -> Dict[str, float]:
    if not durations:
        return {"p50_us": 0.0, "p95_us": 0.0}
    values = np.asarray(durations) * 1e6
    return {
        "p50_us": float(np.percentile(values, 50)),
        "p95_us": float(np.percentile(values, 95)),
    }


def profile_workload(
    name: str,
    backend: str = "reference",
    steps: int = 240,
    scale: float = 0.1,
    reps: int = 3,
    seed: int = 7,
    dt: float = DT,
    trace_path: Optional[str] = None,
    run_id: str = "",
) -> dict:
    """Profile one workload; returns its ``BENCH_profile.json`` entry.

    Two simulators are built from the same network and seeds, so the
    bare and instrumented measurements step through identical spike
    dynamics; reps are interleaved in ABBA order (bare/instrumented one
    rep, instrumented/bare the next) so both host drift *and*
    position-in-pair bias — CPU-quota refill favours whichever run goes
    first — hit both series equally. Garbage collection is paused
    during timing (as ``timeit`` does) and each series is summarised by
    its best rep — the standard way to suppress scheduler/GC noise when
    estimating a small relative delta.

    The trace ring buffer is sized to one rep's worth of events and
    pre-filled by a full warm-up rep, so every timed rep runs in the
    ring's steady state (appends recycle evicted entries instead of
    growing the heap). That is the overhead a long telemetered run
    actually pays — and one rep of events is exactly the window the
    p50/p95 percentiles need.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    spec = get_spec(name)
    network = build_workload(name, scale=scale, seed=seed)
    solver = spec.solver
    bare = Simulator(network, _make_backend(backend, solver, dt), dt=dt, seed=seed + 1)
    instrumented = Simulator(
        network, _make_backend(backend, solver, dt), dt=dt, seed=seed + 1
    )

    metrics = MetricsRegistry()
    events_per_step = 3 + len(network.populations)
    trace = TraceHook(max_events=steps * events_per_step, run_id=run_id)
    perf_counter = time.perf_counter

    # Warm-up both paths: lazy plan binding, allocator, caches — and
    # one full rep through the instrumented path to wrap the trace
    # ring into its steady state before timing starts.
    bare.run(steps, record_spikes=False)
    instrumented.run(steps, record_spikes=False, hooks=[trace], metrics=metrics)

    bare_sps: List[float] = []
    instrumented_sps: List[float] = []
    last_result = None
    def run_bare() -> None:
        start = perf_counter()
        bare.run(steps, record_spikes=False)
        bare_sps.append(steps / (perf_counter() - start))

    def run_instrumented() -> None:
        nonlocal last_result
        start = perf_counter()
        last_result = instrumented.run(
            steps, record_spikes=False, hooks=[trace], metrics=metrics
        )
        instrumented_sps.append(steps / (perf_counter() - start))

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for rep in range(reps):
            if rep % 2 == 0:
                run_bare()
                run_instrumented()
            else:
                run_instrumented()
                run_bare()
    finally:
        if gc_was_enabled:
            gc.enable()

    if trace_path is not None:
        trace.save(trace_path)

    bare_best = float(max(bare_sps))
    instrumented_best = float(max(instrumented_sps))
    overhead = 1.0 - instrumented_best / bare_best

    phase_durations = trace.phase_durations()
    phase_stats: Dict[str, dict] = {}
    for phase, stats in last_result.phases.items():
        seconds_family = metrics.counter(
            "sim_phase_seconds_total", labels={"phase": phase}
        )
        ops_family = metrics.counter(
            "sim_phase_operations_total", labels={"phase": phase}
        )
        entry = _percentiles_us(phase_durations.get(phase, ()))
        entry["seconds_total"] = seconds_family.value
        entry["operations_total"] = int(ops_family.value)
        entry["ops_per_sec"] = (
            ops_family.value / seconds_family.value
            if seconds_family.value > 0
            else 0.0
        )
        phase_stats[phase] = entry

    population_stats: Dict[str, dict] = {}
    for population, durations in sorted(trace.population_durations().items()):
        entry = _percentiles_us(durations)
        entry["neurons"] = network.populations[population].n
        population_stats[population] = entry

    return {
        "backend": last_result.backend_name,
        "neurons": network.n_neurons,
        "synapses": network.n_synapses,
        "steps_per_sec": {
            "bare": bare_best,
            "instrumented": instrumented_best,
        },
        "reps": {"bare": bare_sps, "instrumented": instrumented_sps},
        "overhead_delta": overhead,
        "phases": phase_stats,
        "populations": population_stats,
        "trace_events": trace.total_events,
        "trace_dropped_events": trace.dropped_events,
    }


def run_profile(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    backend: str = "reference",
    steps: int = 240,
    scale: float = 0.1,
    reps: int = 3,
    seed: int = 7,
    dt: float = DT,
    trace_path: Optional[str] = None,
    progress=None,
    run_id: str = "",
) -> dict:
    """Profile several workloads; returns the full JSON payload.

    ``trace_path`` saves the first workload's instrumented trace (the
    Perfetto-loadable sample CI uploads). ``progress`` is an optional
    ``callable(str)`` fed one line per finished workload. ``run_id``
    correlates the payload with the provenance ledger (minted when
    empty).
    """
    from repro.observability.log import new_run_id

    run_id = run_id or new_run_id()
    entries: Dict[str, dict] = {}
    for index, name in enumerate(workloads):
        entry = profile_workload(
            name,
            backend=backend,
            steps=steps,
            scale=scale,
            reps=reps,
            seed=seed,
            dt=dt,
            trace_path=trace_path if index == 0 else None,
            run_id=run_id,
        )
        entries[name] = entry
        if progress is not None:
            progress(
                f"{name:20s} bare {entry['steps_per_sec']['bare']:9.1f} "
                f"instrumented {entry['steps_per_sec']['instrumented']:9.1f} "
                f"steps/s  overhead {100 * entry['overhead_delta']:+5.2f}%"
            )
    return {
        "schema": PROFILE_SCHEMA,
        "run_id": run_id,
        "dt": dt,
        "steps": steps,
        "scale": scale,
        "reps": reps,
        "backend": backend,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": entries,
        "max_overhead_delta": max(
            entry["overhead_delta"] for entry in entries.values()
        ),
    }


def format_profile(payload: dict) -> str:
    """Human-readable digest of a profile payload."""
    lines = [
        f"profile of {len(payload['workloads'])} workload(s) on "
        f"backend {payload['backend']!r} "
        f"({payload['steps']} steps x {payload['reps']} reps, "
        f"scale {payload['scale']})",
    ]
    for name, entry in payload["workloads"].items():
        sps = entry["steps_per_sec"]
        lines.append(
            f"\n{name}: {entry['neurons']:,} neurons on {entry['backend']}"
        )
        lines.append(
            f"  steps/sec     bare {sps['bare']:10.1f}   "
            f"instrumented {sps['instrumented']:10.1f}   "
            f"overhead {100 * entry['overhead_delta']:+5.2f}%"
        )
        for phase, stats in entry["phases"].items():
            lines.append(
                f"  {phase:10s} p50 {stats['p50_us']:8.1f} us   "
                f"p95 {stats['p95_us']:8.1f} us   "
                f"{stats['ops_per_sec']:14.0f} ops/s"
            )
        for population, stats in entry["populations"].items():
            lines.append(
                f"  pop:{population:8s} p50 {stats['p50_us']:8.1f} us   "
                f"p95 {stats['p95_us']:8.1f} us   "
                f"({stats['neurons']:,} neurons)"
            )
    lines.append(
        f"\nmax overhead delta: {100 * payload['max_overhead_delta']:+.2f}% "
        f"(budget: < 5%)"
    )
    return "\n".join(lines)


def write_profile(payload: dict, path) -> None:
    """Write the payload as ``BENCH_profile.json``-style output.

    Written atomically (:func:`repro.io.atomic_write_json`): a run
    killed mid-export leaves the previous profile intact rather than a
    truncated JSON document.
    """
    atomic_write_json(pathlib.Path(path), payload)
