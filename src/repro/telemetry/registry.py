"""MetricsRegistry: the one sink every layer's counters publish into.

The paper's argument is built on measurement (the Figure 3 per-phase
breakdown, the Figure 13 latency/energy comparisons), but until this
layer the reproduction's observations lived in three disconnected
places: ``SimulationResult.phases``, the reliability diagnostics, and
ad-hoc attributes on individual runtimes. The registry gives them one
address space: named metric families with optional labels, collected
from the simulator loop, every population runtime, the spike queues,
and the reliability layer, and exported two ways —

* :meth:`MetricsRegistry.snapshot` — a plain-JSON dict, attached to
  ``SimulationResult.metrics`` and dumped by ``repro run --stats-json``;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format (``repro run --prometheus``), so a run's counters can be
  pushed into any existing scrape pipeline.

Three metric kinds, mirroring the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing totals. Besides
  ``inc``, a counter supports ``set_total`` for the publish-at-collect
  pattern: a runtime that already keeps a lifetime tally (e.g. clip
  counts) sets the cumulative value at collection time instead of
  paying per-event increments on the hot path.
* :class:`Gauge` — point-in-time values (activity factors, queue
  depth).
* :class:`Histogram` — fixed, immutable bucket bounds chosen at
  creation; ``observe`` is O(log buckets) via :func:`bisect.bisect_left`
  over a tuple that never reallocates, so the hot path does no
  allocation and no Python-level loop.

Families are create-or-get: asking for the same name (and kind)
returns the same family, and each distinct label set materialises one
child. Hot-path code holds the child object directly and never goes
through the registry per event.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default bucket bounds for wall-clock histograms: 1 µs .. 10 s in
#: roughly 1-3-10 steps — wide enough for a whole step of any Table I
#: workload, fine enough to separate the phases.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)

#: Names that already passed validation — publish-at-collect re-looks
#: up the same few dozen families every run, so don't re-scan them.
_KNOWN_NAMES: set = set()


def _check_name(name: str) -> None:
    # The Prometheus exposition grammar: [a-zA-Z_][a-zA-Z0-9_]* — a
    # leading digit would parse as a sample value, not a name.
    if name in _KNOWN_NAMES:
        return
    if (
        not name
        or name[0].isdigit()
        or not all(c.isalnum() or c == "_" for c in name)
    ):
        raise ConfigurationError(
            f"invalid metric name {name!r}: must match "
            f"[a-zA-Z_][a-zA-Z0-9_]*"
        )
    _KNOWN_NAMES.add(name)


def _labels_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    # Exposition format: backslash, double-quote and newline must be
    # escaped inside label values.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines are newline-delimited: a literal newline or backslash
    # in help text must be escaped or the line after it parses as junk.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(k, _escape_label_value(v)) for k, v in key
    )
    return "{" + escaped + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter increments must be >= 0, got {amount}"
            )
        self.value += amount

    def set_total(self, total: float) -> None:
        """Set the cumulative total (publish-at-collect pattern).

        The value may only move forward: a runtime republishing its
        lifetime tally can never make the counter go down.
        """
        if total < self.value:
            raise ConfigurationError(
                f"counter total may not decrease ({self.value} -> {total})"
            )
        self.value = total


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bound cumulative histogram with an O(1) hot path.

    Bucket bounds are chosen once at creation and never change, so
    ``observe`` is a single binary search over a constant tuple plus
    three scalar updates — no allocation, no resizing.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ConfigurationError("histogram needs at least one bound")
        if list(cleaned) != sorted(set(cleaned)):
            raise ConfigurationError(
                f"histogram bounds must be strictly increasing, got {cleaned}"
            )
        self.bounds = cleaned
        #: One count per finite bound, plus the +Inf overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(cleaned) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-``le`` counts (ends at count)."""
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries.

        Returns the upper bound of the first bucket whose cumulative
        count reaches the requested rank (the last finite bound for the
        overflow bucket); 0.0 when nothing was observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            if running >= rank:
                return bound
        return self.bounds[-1]


class _Family:
    """One named metric family: kind, help text, children by label set."""

    def __init__(self, name: str, kind: str, help_text: str, bounds=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.children: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def child(self, key: Tuple[Tuple[str, str], ...]):
        child = self.children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.bounds)
            self.children[key] = child
        return child


class MetricsRegistry:
    """Create-or-get registry of named counter/gauge/histogram families."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- family accessors --------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str, bounds=None) -> _Family:
        _check_name(name)
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, bounds)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"not a {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """The counter child of ``name`` for the given label set."""
        return self._family(name, "counter", help).child(_labels_key(labels))

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """The gauge child of ``name`` for the given label set."""
        return self._family(name, "gauge", help).child(_labels_key(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        """The histogram child of ``name`` for the given label set.

        The bucket bounds are fixed by the first registration; later
        calls must not try to change them.
        """
        family = self._family(name, "histogram", help, tuple(buckets))
        if family.bounds != tuple(float(b) for b in buckets):
            raise ConfigurationError(
                f"histogram {name!r} already registered with bounds "
                f"{family.bounds}"
            )
        return family.child(_labels_key(labels))

    # -- reads -------------------------------------------------------------

    def value_of(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Optional[float]:
        """Sum of ``name``'s children whose labels include ``labels``.

        The read side of metric-based alert rules: an empty/None label
        set matches every child, a partial set matches the subset, and
        histograms contribute their observation count. Returns ``None``
        when the family is absent or nothing matches — "no data" is
        not the same condition as "zero". Reads race benignly with the
        single writer thread; the rare dict-resize ``RuntimeError`` is
        retried the same way ``/metrics`` scrapes retry.
        """
        wanted = _labels_key(labels)
        for _ in range(5):
            try:
                family = self._families.get(name)
                if family is None:
                    return None
                total = 0.0
                matched = False
                for key, child in family.children.items():
                    child_labels = dict(key)
                    if any(child_labels.get(k) != v for k, v in wanted):
                        continue
                    matched = True
                    if family.kind == "histogram":
                        total += float(child.count)
                    else:
                        total += float(child.value)
                return total if matched else None
            except RuntimeError:
                continue
        return None

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A plain-JSON view of every family (sorted, deterministic)."""
        out: Dict[str, dict] = {}
        for name in sorted(self._families):
            family = self._families[name]
            values = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: Dict[str, object] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["buckets"] = {
                        _format_value(bound): cumulative
                        for bound, cumulative in zip(
                            (*child.bounds, float("inf")),
                            child.cumulative_counts(),
                        )
                    }
                else:
                    entry["value"] = child.value
                values.append(entry)
            out[name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return out

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind == "histogram":
                    for bound, cumulative in zip(
                        (*child.bounds, float("inf")),
                        child.cumulative_counts(),
                    ):
                        bucket_key = key + (("le", _format_value(bound)),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_key)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_format_labels(key)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
