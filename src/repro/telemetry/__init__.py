"""The telemetry layer: one sink for everything the simulator observes.

Three pieces (see DESIGN.md's "Telemetry layer"):

* :mod:`repro.telemetry.registry` — ``MetricsRegistry``: named
  counter/gauge/histogram families every layer publishes into,
  exported as a JSON snapshot (``SimulationResult.metrics``) and
  Prometheus text exposition format;
* :mod:`repro.telemetry.trace` — ``TraceHook``: the per-phase event
  stream plus per-population kernel spans as Chrome
  ``chrome://tracing`` / Perfetto Trace Event JSON, ring-buffered so
  long runs stay memory-bounded;
* :mod:`repro.telemetry.profile` — the ``repro profile`` harness:
  per-phase/per-population p50/p95, ops/sec, and the measured
  metrics-overhead delta, written as ``BENCH_profile.json``.

The profile harness pulls in the workload registry, so it is imported
lazily by the CLI rather than here.
"""

from repro.telemetry.registry import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import DEFAULT_MAX_EVENTS, TraceHook

__all__ = [
    "Counter",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_SECONDS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceHook",
]
