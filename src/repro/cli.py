"""Command-line interface: ``python -m repro`` (or ``repro-flexon``).

Subcommands:

``workloads``
    Print the Table I workload inventory.
``models``
    Print every supported neuron model, its feature combination, and
    its folded-Flexon microprogram length.
``microcode MODEL``
    Print the Table V-style control-signal listing for one model.
``run WORKLOAD``
    Build and simulate one Table I workload; print firing statistics
    and the phase breakdown. ``--checkpoint-every N`` writes a
    restorable checkpoint file every N steps; ``--resume-from PATH``
    continues a killed run bit-identically from its last checkpoint.
    Telemetry: ``--trace OUT.json`` writes a Perfetto/chrome://tracing
    timeline, ``--stats-json PATH`` dumps the run's statistics as
    JSON, ``--prometheus PATH`` writes the metrics registry in
    Prometheus text exposition format. ``--alerts SPEC.json`` attaches
    the health layer: streaming anomaly detectors feed an alert rules
    engine whose pending/firing/resolved state is served on
    ``GET /alerts``, streamed on SSE, and recorded in the ledger
    entry (also on ``sweep``). SIGINT/SIGTERM stop the run
    gracefully at the next step boundary: a final checkpoint is
    written, partial statistics land in ``--stats-json`` (marked
    ``"partial": true``), and the process exits 130 (SIGINT) or
    143 (SIGTERM) instead of printing a traceback.
``sweep [WORKLOAD ...]``
    Run workloads as supervised, process-isolated jobs: per-job
    wall-clock deadlines (``--deadline``), heartbeat watchdog
    (``--heartbeat-timeout``), retry with exponential backoff
    (``--max-retries``), and checkpoint-based crash recovery
    (``--checkpoint-every``). ``--workers N`` supervises N jobs
    concurrently. Exits 0 only when every job completed.
``profile``
    Run registry workloads bare vs. fully instrumented; report
    per-phase/per-population p50/p95 wall time, ops/sec, and the
    telemetry overhead delta; write ``BENCH_profile.json``.
``experiment NAME``
    Regenerate one paper artifact (``figure3``, ``figures4to8``,
    ``table3``, ``table5``, ``figure12``, ``table6``, ``figure13``,
    ``validation``, ``resilience``) or ``all``.
``simulate SPEC.json``
    Build a network from a declarative front-end spec (Section VII-B)
    and simulate it on the backend the spec names.
``example-spec``
    Print a ready-to-run front-end specification.
``serve [WORKLOAD]``
    Run a workload with the live observability plane attached and keep
    serving ``/metrics``, ``/healthz``, ``/readyz``, ``/status`` and
    the ``/events`` SSE stream until interrupted. The same plane
    attaches to ``repro run`` / ``repro sweep`` via ``--serve SPEC``
    (``PORT``, ``:PORT`` or ``HOST:PORT``; port 0 picks an ephemeral
    port, written to ``--serve-port-file`` for scripts).
``top URL``
    Live console dashboard of a serving run or sweep (polls
    ``/status``); ``--once`` prints a single frame.
``bench``
    Measure steps/sec per workload, append a ``repro-bench/1`` record
    to ``BENCH_history.jsonl``, and with ``--compare`` exit non-zero
    when throughput regressed more than the threshold against the best
    prior record (seeded from the committed ``BENCH_engine.json``).
    ``--plasticity`` instead measures lazy-STDP overhead (plasticity
    off vs lazy vs dense on Brunel and Vogels) and fails when the lazy
    and dense spike digests diverge or nothing was actually deferred.
``runs``
    Query the run-provenance ledger (``ledger.jsonl``, schema
    ``repro-ledger/1``) that ``run``/``sweep``/``bench``/``profile``
    append to: ``list`` recent runs (``--json`` for one record per
    line), ``show RUN_ID`` one full entry,
    ``diff A B`` two entries field by field (exit 1 when their spike
    digests diverge — the reproducibility alarm), and ``trace RUN_ID``
    to re-merge a sharded run's recorded span rings into a
    Perfetto-loadable trace. Run ids accept unique prefixes. Opt out
    of recording with ``--no-ledger`` on any recording command.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError

DT = 1e-4


def _cmd_workloads(_args) -> int:
    from repro.experiments.figure3 import table1_inventory

    print(table1_inventory())
    return 0


def _cmd_models(_args) -> int:
    from repro.experiments.common import format_table
    from repro.features import MODEL_FEATURES
    from repro.hardware.compiler import FlexonCompiler
    from repro.models.registry import create_model

    compiler = FlexonCompiler()
    rows = []
    for name, features in MODEL_FEATURES.items():
        compiled = compiler.compile(create_model(name), DT)
        rows.append(
            (
                name,
                "+".join(f.value for f in features),
                compiled.program.n_signals,
                compiled.program.cycles_per_neuron,
            )
        )
    rows.append(("HH", "(unsupported: hybrid path)", "-", "-"))
    print(
        format_table(
            ["Model", "Features", "Folded signals", "Cycles/neuron"], rows
        )
    )
    return 0


def _cmd_microcode(args) -> int:
    from repro.hardware.compiler import FlexonCompiler
    from repro.models.registry import create_model

    compiled = FlexonCompiler().compile(create_model(args.model), args.dt)
    print(compiled.program.listing())
    print(
        f"\nMUL constants: "
        f"{[hex(c & 0xFFFFFFFF) for c in compiled.program.mul_constants]}"
    )
    print(
        f"ADD constants: "
        f"{[hex(c & 0xFFFFFFFF) for c in compiled.program.add_constants]}"
    )
    print(f"weight pre-scale: {compiled.weight_scale:g}")
    return 0


def _start_plane(
    bind: str, port_file, metrics, status, bus,
    health_check=None, ready_check=None, ledger_path=None,
    alerts_source=None,
):
    """Start the observability HTTP plane behind a ``--serve`` flag."""
    from repro.health.resources import ResourceSampler
    from repro.io import atomic_write_text
    from repro.observability import ObservabilityServer, parse_serve_spec

    host, port = parse_serve_spec(bind)
    resources = ResourceSampler()

    def metrics_text() -> str:
        # Publish-at-collect: the process's own RSS/CPU/fd gauges and
        # the bus's cumulative SSE drop tally are refreshed on each
        # scrape, so self-telemetry costs nothing between scrapes and a
        # slow /events consumer shows up on /metrics without touching
        # the hot path.
        resources.publish(metrics)
        if bus is not None:
            metrics.counter(
                "sse_dropped_events_total",
                help="SSE events dropped across all subscribers "
                "(slow consumers lose events instead of blocking)",
            ).set_total(bus.dropped_total)
        # The registry is mutated by the run/supervisor threads without
        # a lock shared with the HTTP threads; retry the (rare, benign)
        # dict-resized-during-iteration race instead of locking the hot
        # path.
        for _ in range(5):
            try:
                return metrics.to_prometheus()
            except RuntimeError:
                continue
        return ""

    runs_source = None
    if ledger_path:
        from repro.provenance import load_ledger, runs_document

        def runs_source():
            # Re-read per request: the ledger is append-only and may
            # be written by other concurrent repro commands.
            return runs_document(load_ledger(ledger_path))

    server = ObservabilityServer(
        metrics_text=metrics_text,
        status=status,
        bus=bus,
        health_check=health_check,
        ready_check=ready_check,
        host=host,
        port=port,
        runs_source=runs_source,
        alerts_source=alerts_source,
    )
    server.start()
    if port_file:
        atomic_write_text(port_file, f"{server.port}\n")
    endpoints = "/metrics /healthz /readyz /status" + (
        " /alerts" if alerts_source is not None else ""
    ) + (
        " /runs" if runs_source is not None else ""
    ) + " /events"
    print(f"observability plane at {server.url} ({endpoints})")
    return server


def _linger_plane(server, bus, linger: Optional[float]) -> None:
    """Keep the plane serving after the work, then stop it.

    ``linger=None`` serves until Ctrl-C; ``linger=N`` serves N more
    seconds; 0 stops immediately. While lingering, a 1 Hz ``tick``
    event flows on the bus so SSE clients (and the CI smoke) always
    observe live frames, even when they connect after the run ended.
    """
    import time

    if server is None:
        return
    try:
        if linger is not None and linger <= 0:
            return
        print(
            "serving until Ctrl-C"
            if linger is None
            else f"serving for another {linger:g}s (Ctrl-C to stop)"
        )
        deadline = None if linger is None else time.monotonic() + linger
        while deadline is None or time.monotonic() < deadline:
            if bus is not None:
                bus.publish("tick", {})
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        server.stop()


def _ledger_path(args) -> Optional[str]:
    """The ledger file this invocation records to (None = disabled)."""
    if getattr(args, "no_ledger", False):
        return None
    return getattr(args, "ledger", None)


def _append_ledger(args, entry: dict) -> None:
    """Append one provenance entry unless the ledger is disabled."""
    path = _ledger_path(args)
    if not path:
        return
    from repro.provenance import append_entry

    try:
        append_entry(path, entry)
    except OSError as error:
        print(
            f"warning: could not record run in ledger {path!r}: {error}",
            file=sys.stderr,
        )
        return
    print(f"recorded {entry['run_id']} in ledger {path!r}")


def _runtime_health_check(simulator, status):
    """Probe callables for a single simulated run's /healthz and /readyz."""

    def health_check():
        for name, runtime in getattr(
            simulator.backend, "runtimes", {}
        ).items():
            bad = runtime.health()
            if bad is not None:
                variable, indices = bad
                return False, (
                    f"population {name!r}: {variable} non-finite or "
                    f"divergent in {len(indices)} neuron(s)"
                )
        return True, ""

    def ready_check():
        state = status.snapshot().get("state")
        return (
            state in ("running", "finished"),
            f"run state is {state!r}",
        )

    return health_check, ready_check


def _alert_manager(args, status=None, bus=None, metrics=None):
    """Build the alert engine behind a ``--alerts`` flag (None = off)."""
    spec = getattr(args, "alerts", None)
    if not spec:
        return None
    from repro.health import AlertManager, load_alert_rules

    rules = load_alert_rules(spec)
    print(f"alerting: {len(rules)} rule(s) loaded from {spec!r}")
    return AlertManager(rules, status=status, bus=bus, metrics=metrics)


def _print_alert_summary(manager) -> Optional[dict]:
    """Print the final alert tallies; returns the summary dict."""
    if manager is None:
        return None
    summary = manager.summary()
    fired = summary["fired"]
    print(
        f"alerts: {summary['fired_total']} fired"
        + (f" ({', '.join(fired)})" if fired else "")
        + f", {summary['firing']} still firing, "
        f"{summary['resolved']} resolved"
    )
    return summary


def _run_sharded(args) -> int:
    """``repro run --shards N``: the fault-tolerant sharded path."""
    import time

    from repro.errors import ConfigurationError
    from repro.io import atomic_write_json, atomic_write_text
    from repro.observability.log import new_run_id
    from repro.sharding import ShardChaos, ShardCoordinator
    from repro.supervision import JobSpec, RetryPolicy
    from repro.supervision.config import SupervisorConfig
    from repro.workloads import get_spec

    if args.resume_from:
        raise ConfigurationError(
            "--resume-from is the single-process resume path; sharded "
            "runs recover through composite checkpoints instead "
            "(--shard-checkpoint-path)"
        )
    spec = get_spec(args.workload)
    job = JobSpec(
        name=f"{args.workload}-x{args.shards}",
        workload=args.workload,
        backend=args.backend,
        steps=args.steps,
        scale=args.scale,
        seed=args.seed,
        dt=args.dt,
        solver=args.solver,
        shards=args.shards,
    )
    chaos = None
    if (
        args.chaos_shard_kill is not None
        or args.chaos_shard_stall is not None
    ):
        chaos = ShardChaos(
            shard=args.chaos_shard,
            kill_epoch=args.chaos_shard_kill,
            stall_epoch=args.chaos_shard_stall,
        )
    metrics = None
    if args.stats_json or args.prometheus or args.serve or args.alerts:
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
    status = bus = server = None
    if args.serve:
        from repro.observability import EventBus, StatusBoard

        status = StatusBoard(state="starting")
        bus = EventBus()
    manager = _alert_manager(args, status=status, bus=bus, metrics=metrics)
    monitor = None
    if manager is not None:
        from repro.health import HealthMonitor

        monitor = HealthMonitor(manager, metrics=metrics)
    if args.serve:

        def ready_check():
            state = status.snapshot().get("state")
            return (
                state in ("running", "finished", "degraded"),
                f"sharded run state is {state!r}",
            )

        server = _start_plane(
            args.serve, args.serve_port_file, metrics, status, bus,
            ready_check=ready_check, ledger_path=_ledger_path(args),
            alerts_source=None if manager is None else manager.document,
        )
    run_id = new_run_id()
    coordinator = ShardCoordinator(
        job,
        config=SupervisorConfig(),
        retry=RetryPolicy(max_retries=args.shard_max_restarts),
        barrier_timeout=args.barrier_timeout,
        checkpoint_every=args.shard_checkpoint_every,
        checkpoint_path=args.shard_checkpoint_path,
        chaos=chaos,
        metrics=metrics,
        status_board=status,
        event_bus=bus,
        run_id=run_id,
        health=monitor,
    )
    print(f"{spec}")
    print(f"run ID: {run_id}")
    print(
        f"sharded x{args.shards}: barrier window "
        f"{coordinator.plan.window} step(s), "
        f"{coordinator.n_epochs} epoch(s), composite checkpoint every "
        f"{args.shard_checkpoint_every} epoch(s), barrier timeout "
        f"{args.barrier_timeout:g}s, {args.shard_max_restarts} "
        f"restart(s) per shard"
    )
    if chaos is not None:
        print(
            f"chaos: shard {chaos.shard} "
            + (
                f"SIGKILLs itself after epoch {chaos.kill_epoch}'s window"
                if chaos.kill_epoch is not None
                else f"stalls silently at epoch {chaos.stall_epoch}"
            )
        )
    wall_start = time.monotonic()
    try:
        result = coordinator.run()
    finally:
        if monitor is not None:
            monitor.finish()
    wall_seconds = time.monotonic() - wall_start
    duration = result.n_steps * args.dt
    print(
        f"\n{result.total_spikes():,} spikes in {duration * 1e3:.0f} ms "
        f"of biological time across {result.n_shards} shard(s)"
    )
    print(f"spike digest: {result.spike_digest}")
    print(
        f"restarts per shard: {result.restarts} "
        f"({result.replayed_epochs} epoch(s) replayed)"
    )
    if result.degraded:
        print("degraded to single-process execution:")
        for event in result.diagnostics.degraded:
            print(f"  {event.describe()}")
    alert_summary = _print_alert_summary(manager)
    if args.trace:
        trace_document = result.trace_document(network=args.workload)
        atomic_write_json(args.trace, trace_document)
        print(
            f"wrote merged shard trace {args.trace!r} "
            f"({result.n_shards} shard(s) + coordinator, "
            f"{len(trace_document['traceEvents'])} events) — load it in "
            f"chrome://tracing or https://ui.perfetto.dev"
        )
    if args.stats_json:
        stats = result.to_stats_dict()
        if alert_summary is not None:
            stats["alerts"] = alert_summary
        atomic_write_json(args.stats_json, stats)
        print(f"wrote run statistics {args.stats_json!r}")
    if args.prometheus:
        atomic_write_text(args.prometheus, metrics.to_prometheus())
        print(f"wrote Prometheus metrics {args.prometheus!r}")
    from repro.provenance import make_entry

    _append_ledger(args, make_entry(
        "run",
        run_id,
        {
            "workload": args.workload,
            "backend": args.backend,
            "steps": args.steps,
            "scale": args.scale,
            "seed": args.seed,
            "dt": args.dt,
            "solver": args.solver,
            "shards": args.shards,
        },
        workload=args.workload,
        backend=args.backend,
        shards=args.shards,
        steps=args.steps,
        scale=args.scale,
        seed=args.seed,
        dt=args.dt,
        spike_digest=result.spike_digest,
        outcome="degraded" if result.degraded else "completed",
        duration=wall_seconds,
        metrics={
            "total_spikes": result.total_spikes(),
            "restarts": result.restarts,
            "replayed_epochs": result.replayed_epochs,
        },
        artifacts={
            "trace": args.trace,
            "stats_json": args.stats_json,
            "prometheus": args.prometheus,
            "checkpoint": args.shard_checkpoint_path,
        },
        trace_rings=[ring.to_dict() for ring in result.rings],
        extra=(
            None if alert_summary is None
            else {"alerts": alert_summary}
        ),
    ))
    _linger_plane(server, bus, args.serve_linger)
    return 0


def _cmd_run(args) -> int:
    if args.shards > 1:
        return _run_sharded(args)
    import time

    from repro.errors import CheckpointError, RunInterrupted
    from repro.hardware.backend import FlexonBackend, FoldedFlexonBackend
    from repro.io import atomic_write_json, atomic_write_text
    from repro.network.backends import ReferenceBackend
    from repro.network.simulator import Simulator
    from repro.observability.log import new_run_id
    from repro.reliability import Checkpoint, CheckpointHook
    from repro.supervision.interrupt import (
        EXIT_CODES,
        InterruptHook,
        graceful_signals,
    )
    from repro.workloads import build_workload, get_spec

    run_id = new_run_id()
    ledger_config = {
        "workload": args.workload,
        "backend": args.backend,
        "steps": args.steps,
        "scale": args.scale,
        "seed": args.seed,
        "dt": args.dt,
        "solver": args.solver,
        "shards": args.shards,
    }
    spec = get_spec(args.workload)
    backends = {
        "reference": lambda: ReferenceBackend(args.solver or spec.solver),
        "flexon": lambda: FlexonBackend(args.dt),
        "folded": lambda: FoldedFlexonBackend(args.dt),
    }
    backend = backends[args.backend]()
    network = build_workload(args.workload, scale=args.scale, seed=args.seed)
    print(f"{spec}")
    print(f"run ID: {run_id}")
    print(
        f"built at scale {args.scale}: {network.n_neurons:,} neurons, "
        f"{network.n_synapses:,} synapses; backend: {backend.name}"
    )
    simulator = Simulator(network, backend, dt=args.dt, seed=args.seed + 1)

    spikes = None
    if args.resume_from:
        # The rebuilt simulator must match the checkpointed one; the
        # structural signature check turns a mismatch into a clear
        # error instead of a silently wrong resume.
        checkpoint = Checkpoint.load(args.resume_from)
        checkpoint.restore(simulator)
        spikes = checkpoint.seed_recorder()
        print(
            f"resumed from {args.resume_from!r} at step "
            f"{simulator.current_step}"
        )
    remaining = args.steps - simulator.current_step
    if remaining < 0:
        raise CheckpointError(
            f"checkpoint is at step {simulator.current_step}, past the "
            f"requested {args.steps} steps"
        )

    hooks = []
    if args.checkpoint_every:
        hooks.append(
            CheckpointHook(
                simulator, args.checkpoint_every, args.checkpoint_path
            )
        )
    trace = None
    if args.trace:
        from repro.telemetry import TraceHook

        trace = (
            TraceHook(run_id=run_id)
            if args.trace_max_events is None
            else TraceHook(max_events=args.trace_max_events, run_id=run_id)
        )
        hooks.append(trace)
    metrics = None
    if args.stats_json or args.prometheus or args.serve or args.alerts:
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
    server = bus = status = None
    if args.serve:
        from repro.observability import EventBus, ServeHook, StatusBoard

        status = StatusBoard(state="starting")
        bus = EventBus()
        hooks.append(ServeHook(status, bus, metrics=metrics))
    manager = _alert_manager(args, status=status, bus=bus, metrics=metrics)
    if manager is not None:
        from repro.health import HealthHook

        hooks.append(HealthHook(manager, simulator=simulator, metrics=metrics))
    if args.serve:
        health_check, ready_check = _runtime_health_check(simulator, status)
        server = _start_plane(
            args.serve, args.serve_port_file, metrics, status, bus,
            health_check, ready_check, ledger_path=_ledger_path(args),
            alerts_source=None if manager is None else manager.document,
        )
    interrupt = InterruptHook(simulator, checkpoint_path=args.checkpoint_path)
    hooks.append(interrupt)
    wall_start = time.monotonic()
    try:
        with graceful_signals(interrupt):
            result = simulator.run(
                remaining, hooks=hooks, spikes=spikes, metrics=metrics
            )
    except RunInterrupted as stop:
        wall_seconds = time.monotonic() - wall_start
        print(
            f"\ninterrupted by {stop.signal_name} at step {stop.step}; "
            "stopping gracefully"
        )
        if interrupt.checkpoint_written:
            print(
                f"final checkpoint written to "
                f"{interrupt.checkpoint_written!r}; resume with "
                f"--resume-from {interrupt.checkpoint_written!r}"
            )
        if args.stats_json and interrupt.partial_stats is not None:
            partial = dict(interrupt.partial_stats)
            partial["run_id"] = run_id
            atomic_write_json(args.stats_json, partial)
            print(f"wrote partial run statistics {args.stats_json!r}")
        from repro.provenance import make_entry

        _append_ledger(args, make_entry(
            "run",
            run_id,
            ledger_config,
            workload=args.workload,
            backend=args.backend,
            shards=args.shards,
            steps=stop.step,
            scale=args.scale,
            seed=args.seed,
            dt=args.dt,
            outcome=f"interrupted ({stop.signal_name})",
            duration=wall_seconds,
            artifacts={
                "stats_json": args.stats_json,
                "checkpoint": interrupt.checkpoint_written,
            },
        ))
        if server is not None:
            server.stop()
        return EXIT_CODES.get(stop.signal_name, 130)
    wall_seconds = time.monotonic() - wall_start
    duration = simulator.current_step * args.dt
    rate = result.total_spikes() / max(1, network.n_neurons) / duration
    print(
        f"\n{result.total_spikes():,} spikes in {duration * 1e3:.0f} ms "
        f"of biological time ({rate:.1f} Hz mean rate)"
    )
    print("per-phase wall-clock share:")
    for phase, fraction in result.phase_fractions().items():
        print(f"  {phase:10s} {100 * fraction:5.1f}%")
    if not result.diagnostics.healthy():
        print("reliability diagnostics:")
        for line in result.diagnostics.summary().splitlines():
            print(f"  {line}")
    alert_summary = _print_alert_summary(manager)
    if trace is not None:
        trace.save(args.trace)
        print(
            f"wrote trace {args.trace!r} "
            f"({len(trace.to_trace_events())} events, "
            f"{trace.dropped_events} dropped) — load it in "
            f"chrome://tracing or https://ui.perfetto.dev"
        )
    if args.stats_json:
        stats = result.to_stats_dict()
        stats["run_id"] = run_id
        atomic_write_json(args.stats_json, stats)
        print(f"wrote run statistics {args.stats_json!r}")
    if args.prometheus:
        atomic_write_text(args.prometheus, metrics.to_prometheus())
        print(f"wrote Prometheus metrics {args.prometheus!r}")
    from repro.provenance import make_entry
    from repro.supervision.job import spike_digest

    _append_ledger(args, make_entry(
        "run",
        run_id,
        ledger_config,
        workload=args.workload,
        backend=args.backend,
        shards=args.shards,
        steps=args.steps,
        scale=args.scale,
        seed=args.seed,
        dt=args.dt,
        spike_digest=spike_digest(result.spikes),
        outcome="completed",
        duration=wall_seconds,
        metrics={
            "total_spikes": result.total_spikes(),
            "mean_rate_hz": rate,
        },
        artifacts={
            "trace": args.trace,
            "stats_json": args.stats_json,
            "prometheus": args.prometheus,
            "checkpoint": (
                args.checkpoint_path if args.checkpoint_every else None
            ),
        },
        extra=(
            None if alert_summary is None
            else {"alerts": alert_summary}
        ),
    ))
    _linger_plane(server, bus, args.serve_linger)
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.common import format_table
    from repro.io import atomic_write_json
    from repro.supervision import (
        JobSpec,
        RetryPolicy,
        Supervisor,
        SupervisorConfig,
    )
    from repro.workloads import get_spec, workload_names

    names = args.workloads or list(workload_names())
    for name in names:
        get_spec(name)  # fail fast on unknown workloads, before spawning
    jobs = [
        JobSpec(
            name=name,
            workload=name,
            backend=args.backend,
            steps=args.steps,
            scale=args.scale,
            seed=args.seed,
            dt=args.dt,
            solver=args.solver,
            shards=args.shards,
            chaos_kill_at_step=args.chaos_kill_at,
        )
        for name in names
    ]
    status = bus = server = None
    metrics = None
    if args.serve or args.alerts:
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
    if args.serve:
        from repro.observability import EventBus, StatusBoard

        status = StatusBoard(state="starting")
        bus = EventBus()
    manager = _alert_manager(args, status=status, bus=bus, metrics=metrics)
    monitor = None
    if manager is not None:
        from repro.health import HealthMonitor

        monitor = HealthMonitor(manager, metrics=metrics)
    supervisor = Supervisor(
        workers=args.workers,
        retry=RetryPolicy(
            max_retries=args.max_retries, base_delay=args.backoff_base
        ),
        config=SupervisorConfig(
            poll_interval=args.poll_interval,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            deadline_seconds=args.deadline,
        ),
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        seed=args.seed,
        metrics=metrics,
        status_board=status,
        event_bus=bus,
    )
    if args.serve:
        from repro.supervision.job import JOB_BACKENDS

        def health_check():
            tripped = [
                backend for backend in JOB_BACKENDS
                if supervisor.breaker_tripped(backend)
            ]
            if tripped:
                return False, (
                    "numerics circuit breaker open for backend(s): "
                    + ", ".join(tripped)
                )
            return True, ""

        def ready_check():
            state = status.snapshot().get("state")
            return (
                state in ("running", "finished"),
                f"sweep state is {state!r}",
            )

        server = _start_plane(
            args.serve, args.serve_port_file, metrics, status, bus,
            health_check, ready_check, ledger_path=_ledger_path(args),
            alerts_source=None if manager is None else manager.document,
        )
    print(f"sweep run ID: {supervisor.run_id}")
    print(
        f"supervising {len(jobs)} job(s) on backend {args.backend!r}: "
        f"deadline {args.deadline:g}s, heartbeat timeout "
        f"{args.heartbeat_timeout:g}s, {args.max_retries} retr"
        f"{'y' if args.max_retries == 1 else 'ies'}, checkpoint every "
        f"{args.checkpoint_every} steps, {args.workers} worker(s)"
    )
    if args.chaos_kill_at is not None:
        print(
            f"chaos: workers SIGKILL themselves at step "
            f"{args.chaos_kill_at} on their first attempt"
        )
    if monitor is not None:
        # The sweep has no barrier loop driving evaluations, so the
        # monitor's own cadence thread watches the shared registry.
        monitor.start()
    try:
        report = supervisor.run(jobs)
    finally:
        if monitor is not None:
            monitor.finish()
    rows = []
    for job in report.jobs:
        outcome = job.outcome
        if not job.completed and job.failure_kind:
            outcome = f"failed ({job.failure_kind})"
        resumed = max(a.resumed_from_step for a in job.attempts)
        rows.append(
            (
                job.name,
                job.attempts[-1].backend if job.attempts else job.backend,
                outcome,
                len(job.attempts),
                resumed if resumed else "-",
                f"{job.total_spikes:,}",
                "yes" if job.degraded else "no",
                f"{job.wall_seconds:.1f}s",
            )
        )
    print()
    print(
        format_table(
            [
                "Job", "Backend", "Outcome", "Attempts", "Resumed@",
                "Spikes", "Degraded", "Wall",
            ],
            rows,
        )
    )
    print(
        f"\n{len(report.completed)}/{len(report.jobs)} jobs completed "
        f"in {report.wall_seconds:.1f}s"
    )
    alert_summary = _print_alert_summary(manager)
    if args.stats_json:
        report_doc = report.to_dict()
        if alert_summary is not None:
            report_doc["alerts"] = alert_summary
        atomic_write_json(args.stats_json, report_doc)
        print(f"wrote sweep report {args.stats_json!r}")
    if args.trace:
        atomic_write_json(args.trace, report.trace_json())
        print(
            f"wrote worker-lifetime trace {args.trace!r} — load it in "
            "chrome://tracing or https://ui.perfetto.dev"
        )
    if args.log_json:
        atomic_write_json(args.log_json, report.log_stream())
        print(
            f"wrote merged log stream {args.log_json!r} "
            f"({len(report.log_records)} records)"
        )
    from repro.provenance import make_entry

    digests = {
        job.name: job.spike_digest for job in report.jobs if job.spike_digest
    }
    _append_ledger(args, make_entry(
        "sweep",
        supervisor.run_id,
        {
            "workloads": names,
            "backend": args.backend,
            "steps": args.steps,
            "scale": args.scale,
            "seed": args.seed,
            "dt": args.dt,
            "solver": args.solver,
            "shards": args.shards,
            "workers": args.workers,
            "max_retries": args.max_retries,
        },
        workload=",".join(names),
        backend=args.backend,
        shards=args.shards,
        steps=args.steps,
        scale=args.scale,
        seed=args.seed,
        dt=args.dt,
        # One job's digest is THE digest; several jobs pin per-job
        # digests in the extra block instead.
        spike_digest=(
            report.jobs[0].spike_digest if len(report.jobs) == 1 else None
        ),
        outcome="completed" if report.all_completed() else "failed",
        duration=report.wall_seconds,
        metrics={
            "jobs": len(report.jobs),
            "completed": len(report.completed),
            "failed": len(report.failed),
            "retries": sum(job.retries for job in report.jobs),
        },
        artifacts={
            "stats_json": args.stats_json,
            "trace": args.trace,
            "log_json": args.log_json,
        },
        extra={
            "job_digests": digests,
            **(
                {} if alert_summary is None
                else {"alerts": alert_summary}
            ),
        },
    ))
    _linger_plane(server, bus, args.serve_linger)
    return 0 if report.all_completed() else 1


def _cmd_profile(args) -> int:
    import time

    from repro.observability.log import new_run_id
    from repro.telemetry import profile

    workloads = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else list(profile.DEFAULT_WORKLOADS)
    )
    steps, scale, reps = args.steps, args.scale, args.reps
    if args.quick:
        steps, scale, reps = min(steps, 120), min(scale, 0.05), min(reps, 2)
    run_id = new_run_id()
    print(f"run ID: {run_id}")
    wall_start = time.monotonic()
    payload = profile.run_profile(
        workloads,
        backend=args.backend,
        steps=steps,
        scale=scale,
        reps=reps,
        seed=args.seed,
        trace_path=args.trace,
        progress=print,
        run_id=run_id,
    )
    wall_seconds = time.monotonic() - wall_start
    print()
    print(profile.format_profile(payload))
    profile.write_profile(payload, args.output)
    print(f"\nwrote {args.output}")
    if args.trace:
        print(f"wrote sample trace {args.trace!r}")
    from repro.provenance import make_entry

    _append_ledger(args, make_entry(
        "profile",
        run_id,
        {
            "workloads": workloads,
            "backend": args.backend,
            "steps": steps,
            "scale": scale,
            "reps": reps,
            "seed": args.seed,
        },
        workload=",".join(workloads),
        backend=args.backend,
        steps=steps,
        scale=scale,
        seed=args.seed,
        outcome="completed",
        duration=wall_seconds,
        metrics={"max_overhead_delta": payload["max_overhead_delta"]},
        artifacts={"output": args.output, "trace": args.trace},
    ))
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import (
        figure3,
        figure12,
        figure13,
        figures4to8,
        resilience,
        table3,
        table5,
        table6,
        validation,
    )

    def run_figure3():
        rows = figure3.run(scale=args.scale, steps=args.steps)
        return figure3.table1_inventory() + "\n\n" + figure3.format_figure3(rows)

    def run_table3():
        return (
            table3.format_matrix()
            + "\n\n"
            + table3.format_verification(table3.run(steps=args.steps))
        )

    def run_table5():
        return table5.format_table5(table5.run())

    def run_figures4to8():
        return figures4to8.format_figures(figures4to8.run())

    def run_figure12():
        return figure12.format_figure12(figure12.run())

    def run_table6():
        return table6.format_table6(table6.run())

    def run_figure13():
        rows = figure13.run(scale=args.scale, steps=args.steps)
        return figure13.format_figure13(rows)

    def run_validation():
        rows = validation.run(scale=args.scale, steps=args.steps)
        return validation.format_validation(rows)

    def run_resilience():
        rows = resilience.run(scale=args.scale, steps=args.steps)
        return resilience.format_resilience(rows)

    experiments = {
        "figure3": run_figure3,
        "figures4to8": run_figures4to8,
        "table3": run_table3,
        "table5": run_table5,
        "figure12": run_figure12,
        "table6": run_table6,
        "figure13": run_figure13,
        "validation": run_validation,
        "resilience": run_resilience,
    }
    names = list(experiments) if args.name == "all" else [args.name]
    for name in names:
        print(f"== {name} " + "=" * max(1, 60 - len(name)))
        print(experiments[name]())
        print()
    return 0


def _cmd_simulate(args) -> int:
    from repro.frontend import build_simulation, load_spec

    spec = load_spec(args.spec)
    simulator, network = build_simulation(spec)
    print(
        f"{network.name}: {network.n_neurons:,} neurons, "
        f"{network.n_synapses:,} synapses on "
        f"{simulator.backend.name}"
    )
    result = simulator.run(args.steps)
    duration = args.steps * simulator.dt
    for name, population in network.populations.items():
        record = result.spikes.result(name)
        rate = record.n_spikes / population.n / duration
        print(f"  {name:12s} {record.n_spikes:8,d} spikes ({rate:7.1f} Hz)")
    if network.plasticity_rules:
        for rule in network.plasticity_rules:
            print(
                f"  plastic {rule.projection.name}: mean weight "
                f"{rule.mean_weight():.4f}"
            )
    return 0


def _cmd_example_spec(_args) -> int:
    import json

    from repro.frontend import example_spec

    print(json.dumps(example_spec(), indent=2))
    return 0


def _cmd_serve(args) -> int:
    from repro.hardware.backend import FlexonBackend, FoldedFlexonBackend
    from repro.network.backends import ReferenceBackend
    from repro.network.simulator import Simulator
    from repro.observability import EventBus, ServeHook, StatusBoard
    from repro.telemetry import MetricsRegistry
    from repro.workloads import build_workload, get_spec

    spec = get_spec(args.workload)
    backends = {
        "reference": lambda: ReferenceBackend(spec.solver),
        "flexon": lambda: FlexonBackend(args.dt),
        "folded": lambda: FoldedFlexonBackend(args.dt),
    }
    network = build_workload(args.workload, scale=args.scale, seed=args.seed)
    simulator = Simulator(
        network, backends[args.backend](), dt=args.dt, seed=args.seed + 1
    )
    metrics = MetricsRegistry()
    status = StatusBoard(state="starting")
    bus = EventBus()
    health_check, ready_check = _runtime_health_check(simulator, status)
    server = _start_plane(
        args.bind, args.port_file, metrics, status, bus,
        health_check, ready_check, ledger_path=args.ledger,
    )
    print(
        f"simulating {args.workload!r} on {simulator.backend.name} "
        f"({network.n_neurons:,} neurons, {args.steps:,} steps) — "
        f"watch with: repro top {server.url}"
    )
    try:
        simulator.run(
            args.steps,
            hooks=[ServeHook(status, bus, metrics=metrics)],
            metrics=metrics,
        )
    except KeyboardInterrupt:
        print("\nrun interrupted")
        server.stop()
        return 130
    _linger_plane(server, bus, args.linger)
    return 0


def _cmd_top(args) -> int:
    from repro.observability.top import run_top

    url = args.url if "://" in args.url else "http://" + args.url
    return run_top(
        url,
        interval=args.interval,
        iterations=1 if args.once else None,
        clear=not args.no_clear,
    )


def _cmd_bench(args) -> int:
    import time

    from repro.observability import bench
    from repro.observability.log import new_run_id

    if args.plasticity:
        return _bench_plasticity(args, bench)
    if args.shards:
        return _bench_sharding(args, bench)
    workloads = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else list(bench.engine_seed_baselines(args.engine_baseline))
        or ["Brunel", "Izhikevich"]
    )
    steps, scale, reps = args.steps, args.scale, args.reps
    if args.quick:
        steps, scale, reps = min(steps, 120), min(scale, 0.05), min(reps, 2)
    run_id = new_run_id()
    print(f"run ID: {run_id}")
    print(
        f"benchmarking {len(workloads)} workload(s) on {args.backend!r}: "
        f"{steps} steps at scale {scale:g}, median of {reps}"
    )
    wall_start = time.monotonic()
    record = bench.make_record(
        workloads, backend=args.backend, steps=steps, scale=scale,
        seed=args.seed, reps=reps, progress=print, run_id=run_id,
    )
    wall_seconds = time.monotonic() - wall_start
    history = bench.load_history(args.history)
    exit_code = 0
    if args.compare:
        engine_seed = (
            None
            if args.no_engine_seed
            else bench.engine_seed_baselines(args.engine_baseline, scale)
        )
        ok, lines = bench.compare_record(
            record, history, threshold=args.threshold, engine_seed=engine_seed
        )
        print()
        for line in lines:
            print(line)
        if not ok:
            print(
                f"\nFAIL: throughput regressed more than "
                f"{100 * args.threshold:.0f}% against the best prior record"
            )
            exit_code = 1
    if not args.no_append:
        bench.append_history(args.history, record)
        print(f"\nappended record to {args.history!r}")
    from repro.provenance import make_entry

    _append_ledger(args, make_entry(
        "bench",
        run_id,
        {
            "workloads": workloads,
            "backend": args.backend,
            "steps": steps,
            "scale": scale,
            "seed": args.seed,
            "reps": reps,
        },
        workload=",".join(workloads),
        backend=args.backend,
        steps=steps,
        scale=scale,
        seed=args.seed,
        outcome="regressed" if exit_code else "completed",
        duration=wall_seconds,
        metrics={
            "steps_per_sec": {
                name: entry["steps_per_sec"]
                for name, entry in record["workloads"].items()
            },
        },
        artifacts={"history": None if args.no_append else args.history},
    ))
    return exit_code


def _bench_plasticity(args, bench) -> int:
    """``repro bench --plasticity``: lazy-STDP overhead and pinning.

    Fails (exit 1) when the lazy and dense spike digests diverge on any
    workload — they share the same analytic event arithmetic, so any
    difference is a bug — or when the lazy path deferred zero trace
    updates (the laziness it exists for did not happen).
    """
    workloads = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else list(bench.DEFAULT_PLASTICITY_WORKLOADS)
    )
    steps, scale, reps = min(args.steps, 300), args.scale, args.reps
    if args.quick:
        # still 300 steps: fewer and the small-scale networks are
        # silent for the whole run, which would make the digest pin
        # vacuous; a single rep is where the time actually goes
        steps, scale, reps = min(steps, 300), min(scale, 0.05), 1
    from repro.observability.log import new_run_id

    run_id = new_run_id()
    print(f"run ID: {run_id}")
    print(
        f"plasticity bench on {len(workloads)} workload(s): {steps} steps "
        f"at scale {scale:g}, off vs lazy vs dense STDP"
    )
    record = bench.make_plasticity_record(
        workloads, steps=steps, scale=scale,
        seed=args.seed, reps=reps, progress=print, run_id=run_id,
    )
    exit_code = 0
    for name, entry in record["plasticity"].items():
        if not entry["digest_match"]:
            print(
                f"FAIL: {name}: lazy and dense STDP spike digests differ "
                f"({entry['modes']['lazy']['digest'][:16]}… vs "
                f"{entry['modes']['eager']['digest'][:16]}…)"
            )
            exit_code = 1
        if entry["modes"]["lazy"]["deferred_updates"] <= 0:
            print(f"FAIL: {name}: lazy STDP deferred no trace updates")
            exit_code = 1
    if not args.no_append:
        bench.append_history(args.history, record)
        print(f"\nappended plasticity record to {args.history!r}")
    from repro.provenance import make_entry

    _append_ledger(args, make_entry(
        "bench",
        run_id,
        {
            "kind": "plasticity",
            "workloads": workloads,
            "steps": steps,
            "scale": scale,
            "seed": args.seed,
            "reps": reps,
        },
        workload=",".join(workloads),
        backend="reference",
        steps=steps,
        scale=scale,
        seed=args.seed,
        outcome="failed" if exit_code else "completed",
        metrics={
            "digest_match": {
                name: entry["digest_match"]
                for name, entry in record["plasticity"].items()
            },
        },
        artifacts={"history": None if args.no_append else args.history},
        extra={"bench_kind": "plasticity"},
    ))
    return exit_code


def _bench_sharding(args, bench) -> int:
    """``repro bench --shards``: sharded scaling and digest parity.

    Runs each workload single-process, then through the process-backed
    coordinator at every requested shard count, recording wall times
    into a ``kind: "sharding"`` history entry. Fails (exit 1) when any
    sharded digest differs from the single-process oracle or any run
    degraded — wall-clock speedup is recorded but never gated on.
    """
    from repro.errors import ConfigurationError

    try:
        shard_counts = [
            int(part) for part in args.shards.split(",") if part.strip()
        ]
    except ValueError:
        raise ConfigurationError(
            f"--shards expects a comma-separated list of shard counts, "
            f"got {args.shards!r}"
        ) from None
    workloads = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else ["Brunel"]
    )
    steps, scale = min(args.steps, 400), args.scale
    if args.quick:
        steps, scale = min(steps, 200), min(scale, 0.05)
    from repro.observability.log import new_run_id

    run_id = new_run_id()
    print(f"run ID: {run_id}")
    print(
        f"sharding bench on {len(workloads)} workload(s): {steps} steps "
        f"at scale {scale:g}, shard counts {shard_counts}"
    )
    record = bench.make_sharding_record(
        workloads, shard_counts, steps=steps, scale=scale,
        seed=args.seed, progress=print, run_id=run_id,
    )
    exit_code = 0
    for name, entry in record["sharding"].items():
        if not entry["digest_match"]:
            print(
                f"FAIL: {name}: sharded spike digest diverged from the "
                f"single-process oracle (or a run degraded)"
            )
            exit_code = 1
    if not args.no_append:
        bench.append_history(args.history, record)
        print(f"\nappended sharding record to {args.history!r}")
    from repro.provenance import make_entry

    _append_ledger(args, make_entry(
        "bench",
        run_id,
        {
            "kind": "sharding",
            "workloads": workloads,
            "shard_counts": shard_counts,
            "steps": steps,
            "scale": scale,
            "seed": args.seed,
        },
        workload=",".join(workloads),
        backend="reference",
        steps=steps,
        scale=scale,
        seed=args.seed,
        outcome="failed" if exit_code else "completed",
        metrics={
            "digest_match": {
                name: entry["digest_match"]
                for name, entry in record["sharding"].items()
            },
        },
        artifacts={"history": None if args.no_append else args.history},
        extra={"bench_kind": "sharding"},
    ))
    return exit_code


def _cmd_runs(args) -> int:
    """``repro runs``: query the run-provenance ledger."""
    import json

    from repro.provenance import (
        ProcessRing,
        diff_entries,
        find_entry,
        load_ledger,
        merge_rings,
        runs_document,
    )

    entries = load_ledger(args.ledger)

    if args.action == "list":
        if args.kind:
            entries = [e for e in entries if e.get("kind") == args.kind]
        if args.workload:
            entries = [
                e for e in entries
                if args.workload in str(e.get("workload") or "")
            ]
        if args.json:
            ordered = sorted(
                entries,
                key=lambda e: float(e.get("ts", 0.0)),
                reverse=True,
            )
            for entry in ordered[: args.limit]:
                print(json.dumps(entry, sort_keys=True))
            return 0
        document = runs_document(entries, limit=args.limit)
        if not document["runs"]:
            print(f"no matching runs in {args.ledger!r}")
            return 0
        from repro.experiments.common import format_table

        rows = [
            (
                row["run_id"],
                row["timestamp"],
                row["kind"],
                row["workload"],
                row["backend"] or "-",
                row["shards"],
                row["steps"],
                row["outcome"],
                row["spike_digest"] or "-",
            )
            for row in document["runs"]
        ]
        print(
            format_table(
                [
                    "Run", "When", "Kind", "Workload", "Backend",
                    "Shards", "Steps", "Outcome", "Spike digest",
                ],
                rows,
            )
        )
        shown = len(document["runs"])
        print(
            f"\n{shown} of {document['n_runs']} run(s) in {args.ledger!r}"
            + ("" if shown == document["n_runs"] else " (raise --limit)")
        )
        return 0

    if args.action == "show":
        entry = find_entry(entries, args.run_id)
        shown = dict(entry)
        rings = shown.pop("trace_rings", None)
        if rings is not None:
            if args.full:
                shown["trace_rings"] = rings
            else:
                shown["trace_rings"] = (
                    f"<{len(rings)} ring(s) omitted; --full to include, "
                    f"'repro runs trace' to merge>"
                )
        print(json.dumps(shown, indent=2))
        return 0

    if args.action == "diff":
        a = find_entry(entries, args.run_a)
        b = find_entry(entries, args.run_b)
        print(f"a: {a['run_id']}  ({a.get('timestamp')})")
        print(f"b: {b['run_id']}  ({b.get('timestamp')})")
        differences = diff_entries(a, b)
        if not differences:
            print("entries are identical across all compared fields")
        for field, left, right in differences:
            print(f"  {field:14s} {left!r:>34}  ->  {right!r}")
        digest_a, digest_b = a.get("spike_digest"), b.get("spike_digest")
        if digest_a and digest_b:
            if digest_a != digest_b:
                print(
                    "\nSPIKE DIGEST DIVERGENCE: the two runs produced "
                    "different spike trains"
                )
                return 1
            print("\nspike digests match: bit-identical spike trains")
        else:
            print("\nspike digest not recorded for both runs; not compared")
        return 0

    # args.action == "trace"
    from repro.io import atomic_write_json

    entry = find_entry(entries, args.run_id)
    rings = entry.get("trace_rings")
    if not rings:
        raise ReproError(
            f"ledger entry {entry['run_id']} carries no trace rings "
            "(only sharded `repro run --shards N` records them)"
        )
    document = merge_rings(
        [ProcessRing.from_dict(ring) for ring in rings],
        run_id=str(entry.get("run_id", "")),
        network=entry.get("workload"),
    )
    output = args.output or f"{entry['run_id']}-trace.json"
    atomic_write_json(output, document)
    print(
        f"wrote merged trace {output!r} "
        f"({document['otherData']['n_tracks']} track(s), "
        f"{len(document['traceEvents'])} events) — load it in "
        f"chrome://tracing or https://ui.perfetto.dev"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flexon (ISCA 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the Table I workloads")
    sub.add_parser("models", help="list supported neuron models")

    microcode = sub.add_parser(
        "microcode", help="print a model's folded-Flexon microprogram"
    )
    microcode.add_argument("model")
    microcode.add_argument("--dt", type=float, default=DT)

    run = sub.add_parser("run", help="simulate one Table I workload")
    run.add_argument("workload")
    run.add_argument(
        "--backend",
        choices=("reference", "flexon", "folded"),
        default="folded",
    )
    run.add_argument("--solver", default=None, help="reference solver override")
    run.add_argument("--scale", type=float, default=0.05)
    run.add_argument("--steps", type=int, default=1000)
    run.add_argument("--dt", type=float, default=DT)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition the network across N crash-recoverable worker "
        "processes synchronised at min-delay barriers (0/1 = off); "
        "spikes are bit-identical to the single-process run",
    )
    run.add_argument(
        "--barrier-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="kill and restart a shard with no traffic for this long",
    )
    run.add_argument(
        "--shard-checkpoint-every",
        type=int,
        default=1,
        metavar="EPOCHS",
        help="composite-checkpoint interval in barrier epochs",
    )
    run.add_argument(
        "--shard-checkpoint-path",
        default=None,
        metavar="PATH",
        help="atomically persist each composite checkpoint here",
    )
    run.add_argument(
        "--shard-max-restarts",
        type=int,
        default=2,
        metavar="N",
        help="restarts per shard before degrading to single-process",
    )
    run.add_argument(
        "--chaos-shard-kill",
        type=int,
        default=None,
        metavar="EPOCH",
        help="chaos: the --chaos-shard SIGKILLs itself after computing "
        "EPOCH's window (exercises restart + replay; used by CI)",
    )
    run.add_argument(
        "--chaos-shard-stall",
        type=int,
        default=None,
        metavar="EPOCH",
        help="chaos: the --chaos-shard hangs silently at EPOCH "
        "(exercises the barrier stall detector)",
    )
    run.add_argument(
        "--chaos-shard",
        type=int,
        default=0,
        metavar="ID",
        help="which shard the chaos flags target (default 0)",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write a restorable checkpoint every N steps (0 = off)",
    )
    run.add_argument(
        "--checkpoint-path",
        default="repro-checkpoint.pkl",
        help="file the periodic checkpoint is (atomically) written to",
    )
    run.add_argument(
        "--resume-from",
        default=None,
        metavar="PATH",
        help="resume bit-identically from a checkpoint file; --steps "
        "is the total step count including the checkpointed prefix",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write a chrome://tracing / Perfetto trace of the run",
    )
    run.add_argument(
        "--trace-max-events",
        type=int,
        default=None,
        metavar="N",
        help="trace ring-buffer capacity (default: TraceHook's bound)",
    )
    run.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="dump phase stats, counters, diagnostics and metrics as JSON",
    )
    run.add_argument(
        "--prometheus",
        default=None,
        metavar="PATH",
        help="write run metrics in Prometheus text exposition format",
    )
    _add_serve_flags(run)
    _add_alert_flags(run)
    _add_ledger_flags(run)

    sweep = sub.add_parser(
        "sweep",
        help="run workloads as supervised, process-isolated jobs with "
        "deadlines, retries, and checkpoint-based crash recovery",
    )
    sweep.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help="Table I workload names (default: the full registry)",
    )
    sweep.add_argument(
        "--backend",
        choices=("reference", "solver", "flexon", "folded"),
        default="reference",
    )
    sweep.add_argument(
        "--solver", default=None, help="reference solver override"
    )
    sweep.add_argument("--scale", type=float, default=0.05)
    sweep.add_argument("--steps", type=int, default=400)
    sweep.add_argument("--dt", type=float, default=DT)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="jobs supervised concurrently (each job retries serially)",
    )
    sweep.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per job after the first attempt",
    )
    sweep.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base delay of the exponential retry backoff",
    )
    sweep.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="per-job wall-clock deadline before the watchdog kills it",
    )
    sweep.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="kill a worker whose progress heartbeats stall this long",
    )
    sweep.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="wall-clock interval between worker progress heartbeats",
    )
    sweep.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="watchdog poll cadence on the worker pipe",
    )
    sweep.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run each job's network partitioned across N in-process "
        "shards inside its worker (0/1 = off); digests stay "
        "bit-identical to single-process execution",
    )
    sweep.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        metavar="N",
        help="worker checkpoint interval in steps (0 disables recovery)",
    )
    sweep.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="keep job checkpoints here (default: a temp dir per sweep)",
    )
    sweep.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="write the structured sweep report (repro-sweep/1) as JSON",
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write worker-lifetime spans as a Perfetto-loadable trace",
    )
    sweep.add_argument(
        "--chaos-kill-at",
        type=int,
        default=None,
        metavar="STEP",
        help="inject a worker SIGKILL at STEP on each job's first "
        "attempt (exercises the kill/resume path; used by CI)",
    )
    sweep.add_argument(
        "--log-json",
        default=None,
        metavar="PATH",
        help="write the merged supervisor+worker structured log stream "
        "(repro-log/1) as JSON",
    )
    _add_serve_flags(sweep)
    _add_alert_flags(sweep)
    _add_ledger_flags(sweep)

    profile = sub.add_parser(
        "profile",
        help="measure per-phase/per-population latency and telemetry "
        "overhead; write BENCH_profile.json",
    )
    profile.add_argument(
        "--workloads",
        default=None,
        metavar="A,B,C",
        help="comma-separated Table I workload names "
        "(default: Brunel, Izhikevich, Nowotny et al.)",
    )
    profile.add_argument(
        "--backend",
        choices=("reference", "flexon", "folded", "event-driven"),
        default="reference",
    )
    profile.add_argument("--steps", type=int, default=240)
    profile.add_argument("--scale", type=float, default=0.1)
    profile.add_argument("--reps", type=int, default=3)
    profile.add_argument("--seed", type=int, default=7)
    profile.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: caps steps/scale/reps for a fast smoke profile",
    )
    profile.add_argument(
        "--output",
        default="BENCH_profile.json",
        help="where to write the machine-readable profile",
    )
    profile.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="also save the first workload's instrumented trace",
    )
    _add_ledger_flags(profile)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "name",
        choices=(
            "figure3", "figures4to8", "table3", "table5", "figure12",
            "table6", "figure13", "validation", "resilience", "all",
        ),
    )
    experiment.add_argument("--scale", type=float, default=0.03)
    experiment.add_argument("--steps", type=int, default=400)

    simulate = sub.add_parser(
        "simulate", help="run a declarative front-end spec (JSON)"
    )
    simulate.add_argument("spec", help="path to a JSON network spec")
    simulate.add_argument("--steps", type=int, default=1000)

    sub.add_parser("example-spec", help="print a ready-to-run JSON spec")

    serve = sub.add_parser(
        "serve",
        help="run a workload with the live observability plane attached "
        "and keep serving until interrupted",
    )
    serve.add_argument(
        "workload",
        nargs="?",
        default="Brunel",
        help="Table I workload to simulate (default: Brunel)",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="SPEC",
        help="PORT, :PORT or HOST:PORT (port 0 = ephemeral; default)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once serving (for scripts)",
    )
    serve.add_argument(
        "--backend",
        choices=("reference", "flexon", "folded"),
        default="reference",
    )
    serve.add_argument("--scale", type=float, default=0.05)
    serve.add_argument("--steps", type=int, default=5000)
    serve.add_argument("--dt", type=float, default=DT)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument(
        "--linger",
        type=float,
        default=None,
        metavar="SECONDS",
        help="keep serving this long after the run "
        "(default: until Ctrl-C)",
    )
    serve.add_argument(
        "--ledger",
        default="ledger.jsonl",
        metavar="PATH",
        help="run-provenance ledger served on GET /runs",
    )

    top = sub.add_parser(
        "top", help="live console view of a serving run or sweep"
    )
    top.add_argument(
        "url", help="server address (URL or HOST:PORT) printed by --serve"
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS"
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single snapshot and exit (CI/script friendly)",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )

    bench = sub.add_parser(
        "bench",
        help="measure steps/sec per workload, append to "
        "BENCH_history.jsonl, and (--compare) fail on regressions",
    )
    bench.add_argument(
        "--workloads",
        default=None,
        metavar="A,B,C",
        help="comma-separated workload names (default: the workloads "
        "in the committed BENCH_engine.json baseline)",
    )
    bench.add_argument(
        "--backend",
        choices=("reference", "solver", "flexon", "folded"),
        default="reference",
    )
    bench.add_argument("--steps", type=int, default=400)
    bench.add_argument("--scale", type=float, default=0.05)
    bench.add_argument("--seed", type=int, default=5)
    bench.add_argument("--reps", type=int, default=3)
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: caps steps/scale/reps for a fast smoke bench",
    )
    bench.add_argument(
        "--plasticity",
        action="store_true",
        help="measure lazy-STDP overhead (off vs lazy vs dense) instead "
        "of raw throughput; fails if lazy and dense spike digests "
        "diverge or no trace updates were deferred",
    )
    bench.add_argument(
        "--shards",
        default=None,
        metavar="N,M",
        help="measure sharded scaling instead of raw throughput: run "
        "each workload through the process-backed coordinator at these "
        "shard counts (e.g. 2,4) and fail if any digest diverges from "
        "the single-process oracle",
    )
    bench.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        metavar="PATH",
        help="the append-only JSONL throughput history",
    )
    bench.add_argument(
        "--engine-baseline",
        default="BENCH_engine.json",
        metavar="PATH",
        help="committed engine export seeding the comparison baseline",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="exit non-zero when any workload regressed more than "
        "--threshold vs the best prior record",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="fractional steps/sec loss that fails --compare "
        "(default 0.15)",
    )
    bench.add_argument(
        "--no-engine-seed",
        action="store_true",
        help="compare against history only (e.g. in CI, where the "
        "committed baseline's host is not comparable)",
    )
    bench.add_argument(
        "--no-append",
        action="store_true",
        help="measure and compare without recording to the history",
    )
    _add_ledger_flags(bench)

    runs = sub.add_parser(
        "runs",
        help="query the run-provenance ledger (what ran, with which "
        "config, producing which spike digest)",
    )
    runs.add_argument(
        "--ledger",
        default="ledger.jsonl",
        metavar="PATH",
        help="the ledger file to query (default: ledger.jsonl)",
    )
    runs_sub = runs.add_subparsers(dest="action", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="list recorded runs, newest first"
    )
    runs_list.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show at most N runs (default 20)",
    )
    runs_list.add_argument(
        "--kind", default=None,
        choices=("run", "sweep", "bench", "profile"),
        help="only runs of this kind",
    )
    runs_list.add_argument(
        "--workload", default=None, metavar="NAME",
        help="only runs whose workload contains NAME",
    )
    runs_list.add_argument(
        "--json",
        action="store_true",
        help="print one full ledger record per line (newest first) "
        "instead of the summary table — jq/script friendly",
    )
    runs_show = runs_sub.add_parser(
        "show", help="print one run's full ledger entry as JSON"
    )
    runs_show.add_argument(
        "run_id", help="full run id or unique prefix"
    )
    runs_show.add_argument(
        "--full", action="store_true",
        help="include the inline trace rings (large)",
    )
    runs_diff = runs_sub.add_parser(
        "diff",
        help="compare two runs field by field; exits 1 when their "
        "spike digests diverge",
    )
    runs_diff.add_argument("run_a", help="run id or unique prefix")
    runs_diff.add_argument("run_b", help="run id or unique prefix")
    runs_trace = runs_sub.add_parser(
        "trace",
        help="re-merge a run's recorded span rings into a "
        "Perfetto-loadable trace file",
    )
    runs_trace.add_argument("run_id", help="full run id or unique prefix")
    runs_trace.add_argument(
        "--output", "-o", default=None, metavar="OUT.json",
        help="trace file to write (default: <run_id>-trace.json)",
    )
    return parser


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        default="ledger.jsonl",
        metavar="PATH",
        help="append this invocation's provenance entry here "
        "(query with `repro runs`; default: ledger.jsonl)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not record this invocation in the run ledger",
    )


def _add_alert_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--alerts",
        default=None,
        metavar="SPEC.json",
        help="evaluate these alert rules (repro-alerts/1 JSON) against "
        "the live run: pending -> firing after each rule's for_seconds, "
        "served on GET /alerts and recorded in the ledger entry",
    )


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--serve",
        default=None,
        metavar="SPEC",
        help="serve the live observability plane while running: PORT, "
        ":PORT or HOST:PORT (port 0 = ephemeral)",
    )
    parser.add_argument(
        "--serve-port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once serving (for scripts)",
    )
    parser.add_argument(
        "--serve-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the plane serving this long after the work finishes",
    )


_COMMANDS = {
    "workloads": _cmd_workloads,
    "models": _cmd_models,
    "microcode": _cmd_microcode,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "profile": _cmd_profile,
    "experiment": _cmd_experiment,
    "simulate": _cmd_simulate,
    "example-spec": _cmd_example_spec,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "bench": _cmd_bench,
    "runs": _cmd_runs,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); not a failure.
        # Detach stdout so interpreter shutdown doesn't warn about the
        # unflushable stream.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
