"""Extension benchmark: STDP learning with neurons on Flexon.

Times the full training loop of the unsupervised pattern-learning task
(see ``examples/stdp_pattern_learning.py``) with neuron computation on
the folded-Flexon backend, and asserts the learning outcome: the
readout becomes selective to the embedded pattern. Output:
``benchmarks/output/stdp_learning.txt``.
"""


from repro.experiments.common import format_table
from repro.hardware import FoldedFlexonBackend
from repro.network import Network, PatternStimulus, PoissonStimulus, Simulator
from repro.plasticity import PairSTDP

from benchmarks.conftest import write_output

DT = 1e-4
TRAIN_STEPS = 15_000
N_PATTERN, N_NOISE = 20, 40


def _train():
    net = Network("stdp-bench")
    inputs = net.add_population("inputs", N_PATTERN + N_NOISE, "LIF")
    net.add_population("readout", 4, "LIF")
    projection = net.connect(
        "inputs", "readout", probability=1.0, weight=4.0, delay_steps=1
    )
    pattern = list(range(N_PATTERN))
    net.add_stimulus(
        PatternStimulus(inputs, {0: pattern, 2: pattern}, weight=300.0,
                        period=300)
    )
    net.add_stimulus(
        PoissonStimulus(
            inputs, rate_hz=66.0, weight=300.0, dt=DT,
            neuron_slice=slice(N_PATTERN, N_PATTERN + N_NOISE),
        )
    )
    rule = PairSTDP(
        a_plus=0.10, a_minus=0.055, tau_plus=10e-3, tau_minus=30e-3,
        w_min=0.0, w_max=12.0,
    )
    net.add_plasticity(projection, rule)
    Simulator(net, FoldedFlexonBackend(DT), dt=DT, seed=21).run(TRAIN_STEPS)
    pre_of = projection.pre_of_synapses()
    pattern_w = float(projection.weights[pre_of < N_PATTERN].mean())
    noise_w = float(projection.weights[pre_of >= N_PATTERN].mean())
    return pattern_w, noise_w


def test_stdp_pattern_learning(benchmark, output_dir):
    pattern_w, noise_w = benchmark.pedantic(_train, rounds=1, iterations=1)
    # After 1.5 s the pattern channels dominate the noise channels.
    assert pattern_w > noise_w
    assert noise_w < 4.0
    assert pattern_w / max(noise_w, 1e-9) > 1.5
    rows = [
        ("pattern channels (mean weight)", f"{pattern_w:.2f}"),
        ("noise channels (mean weight)", f"{noise_w:.2f}"),
        ("selectivity", f"{pattern_w / max(noise_w, 1e-9):.1f}x"),
        ("training duration", f"{TRAIN_STEPS * DT:.1f} s biological"),
    ]
    write_output(
        output_dir,
        "stdp_learning.txt",
        format_table(["Metric", "Value"], rows),
    )
