"""Extension benchmark: neuronal behaviour regimes on Flexon.

Regenerates the behaviour demonstrations (the "Izhikevich's model
emulates 20 neuronal behaviors ... Flexon fully supports" claim, made
executable for a representative subset) and writes ASCII rasters.
Output: ``benchmarks/output/behaviors.txt``.
"""

import numpy as np

from repro.experiments.behaviors import PRESETS, burstiness, run_behavior

from benchmarks.conftest import write_output


def _run_all():
    return {
        name: run_behavior(preset)
        for name, preset in PRESETS.items()
        if name != "class-1 excitability"
    }


def _raster(spikes, steps, width=90):
    bins = np.zeros(width, dtype=bool)
    for step in spikes:
        bins[min(width - 1, step * width // steps)] = True
    return "".join("|" if hit else "." for hit in bins)


def test_behavior_regimes(benchmark, output_dir):
    trains = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    tonic = np.diff(trains["tonic spiking"])
    assert tonic.std() / tonic.mean() < 0.05  # clockwork
    assert max(trains["phasic spiking"]) < 1500  # onset only
    adaptation = np.diff(trains["spike-frequency adaptation"])
    assert adaptation[-1] > 1.5 * adaptation[0]
    assert burstiness(trains["mixed mode"]) > 1.0
    ceiling = trains["refractory ceiling"]
    assert np.diff(ceiling).min() >= 100  # the AR dead time

    lines = []
    for name, train in trains.items():
        steps = PRESETS[name].steps
        lines.append(f"{name:28s} {_raster(train, steps)}  "
                     f"{len(train)} spikes / {steps * 1e-4:.1f} s")
    write_output(output_dir, "behaviors.txt", "\n".join(lines))
