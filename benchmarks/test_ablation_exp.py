"""Ablation: Schraudolph fast exp vs exact exp in the EXI path.

Section IV-B1 adopts a fast approximate exponential to cut the critical
path; this ablation quantifies (a) the approximation error across the
operating range, (b) its effect on EIF spike trains, and (c) the
software-side speed difference. Output:
``benchmarks/output/ablation_exp.txt``.
"""

import numpy as np

from repro.experiments.common import format_table
from repro.fixedpoint import fast_exp
from repro.fixedpoint.fastexp import max_relative_error
from repro.hardware.compiler import FlexonCompiler
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.models.registry import create_model

from benchmarks.conftest import write_output

DT = 1e-4


def _eif_spike_shift(steps: int = 800, n: int = 16):
    """Spike agreement between fast-exp hardware and exact-exp floats."""
    model = create_model("EIF")
    compiled = FlexonCompiler().compile(model, DT)
    hardware = compiled.instantiate_flexon(n)
    reference = model.initial_state(n)  # float reference uses np.exp
    rng = np.random.default_rng(5)
    agree = 0
    for _ in range(steps):
        weights = (rng.random((2, n)) < 0.08) * 1.5
        weights[1] *= 0.2
        raw = fx_from_float(weights * compiled.weight_scale, FLEXON_FORMAT)
        fired_hw = hardware.step(raw)
        fired_ref = model.step(reference, weights.copy(), DT)
        agree += int((fired_hw == fired_ref).sum())
    return agree / (steps * n)


def test_fast_exp_ablation(benchmark, output_dir):
    ys = np.linspace(-8.0, 8.0, 200_000)
    approx = benchmark(fast_exp, ys)
    exact = np.exp(ys)
    worst = float(np.max(np.abs(approx - exact) / exact))
    # Schraudolph's published worst case (~4%) with margin.
    assert worst < 0.05
    agreement = _eif_spike_shift()
    # The approximation "does not affect our SNN simulation results".
    assert agreement >= 0.98
    rows = [
        ("worst relative error on [-8, 8]", f"{100 * worst:.2f}%"),
        (
            "worst relative error on [-1, 1]",
            f"{100 * max_relative_error(-1, 1):.2f}%",
        ),
        ("EIF spike agreement (fast exp vs exact)", f"{100 * agreement:.2f}%"),
    ]
    write_output(
        output_dir, "ablation_exp.txt", format_table(["Metric", "Value"], rows)
    )
