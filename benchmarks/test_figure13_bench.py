"""Benchmark: regenerate Figure 13 (speedups and energy efficiency).

The headline result. Times the full-platform evaluation of all ten
workloads; asserts the paper's shapes (who wins, roughly by how much,
and the Destexhe crossover). Output: ``benchmarks/output/figure13.txt``.
"""

from repro.experiments.figure13 import (
    evaluate_workload,
    format_figure13,
    geomean_efficiency,
    geomean_speedups,
)

from benchmarks.conftest import write_output


def _evaluate_all(profiles):
    return [evaluate_workload(profile) for profile in profiles.values()]


def test_figure13_speedups_and_efficiency(
    benchmark, workload_profiles, output_dir
):
    rows = benchmark(_evaluate_all, workload_profiles)

    # Every workload: both arrays beat both hosts.
    for row in rows:
        speedups = row.speedups()
        assert speedups["flexon_vs_cpu"] > 5, row.workload
        assert speedups["flexon_vs_gpu"] > 1, row.workload
        assert speedups["folded_vs_cpu"] > 5, row.workload

    # The Destexhe crossover (Section VI-C): the single-cycle design
    # wins exactly where the AdEx microprograms are long.
    for row in rows:
        speedups = row.speedups()
        if row.workload.startswith("Destexhe"):
            assert speedups["flexon_vs_cpu"] > speedups["folded_vs_cpu"]

    # Folded wins latency on the clear majority of workloads.
    folded_wins = sum(
        1
        for row in rows
        if row.speedups()["folded_vs_cpu"] > row.speedups()["flexon_vs_cpu"]
    )
    assert folded_wins >= 7

    # Geomeans in the paper's bands (order-of-magnitude fidelity).
    speed = geomean_speedups(rows)
    assert 40 <= speed["flexon_vs_cpu"] <= 180  # paper 87.4x
    assert 50 <= speed["folded_vs_cpu"] <= 250  # paper 122.5x
    assert speed["folded_vs_cpu"] > speed["flexon_vs_cpu"]
    assert 2 <= speed["flexon_vs_gpu"] <= 20  # paper 8.19x

    efficiency = geomean_efficiency(rows)
    assert 3_000 <= efficiency["flexon_vs_cpu"] <= 15_000  # paper 6186x
    assert 3_000 <= efficiency["folded_vs_cpu"] <= 15_000  # paper 5415x
    # The single-cycle design wins energy efficiency (Section VI-C).
    assert efficiency["flexon_vs_cpu"] > efficiency["folded_vs_cpu"]

    write_output(output_dir, "figure13.txt", format_figure13(rows))
