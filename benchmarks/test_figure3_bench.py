"""Benchmark: regenerate Table I and Figure 3.

Figure 3 is the motivation experiment: per-phase latency breakdown of
all ten SNNs on the CPU (NEST) and GPU (GeNN) models. The benchmark
times the per-workload breakdown computation; the full rendered figure
is written to ``benchmarks/output/figure3.txt``.
"""

from repro.costmodel.cpu_gpu import CPU_SPEC, GPU_SPEC
from repro.experiments.figure3 import (
    BreakdownRow,
    breakdown_for,
    format_figure3,
    table1_inventory,
)

from benchmarks.conftest import write_output


def _all_rows(profiles):
    rows = []
    for name, profile in profiles.items():
        rows.append(BreakdownRow(name, "CPU", breakdown_for(profile, CPU_SPEC)))
        rows.append(
            BreakdownRow(name, "GPU", breakdown_for(profile, GPU_SPEC, gpu=True))
        )
    return rows


def test_figure3_breakdown(benchmark, workload_profiles, output_dir):
    rows = benchmark(_all_rows, workload_profiles)
    # Paper shape: RKF45 CPU workloads are neuron-computation bound.
    by_key = {(r.workload, r.platform): r for r in rows}
    assert by_key[("Vogels et al.", "CPU")].neuron_fraction > 0.5
    assert by_key[("Brette et al.", "CPU")].neuron_fraction > 0.5
    # Euler keeps the share below the same-model RKF45 rows ("Employing
    # Euler method instead of RKF45 (e.g., Brunel) reduces the
    # proportion of neuron computation").
    assert (
        by_key[("Brunel", "CPU")].neuron_fraction
        < by_key[("Vogels-Abbott", "CPU")].neuron_fraction
    )
    assert by_key[("Izhikevich", "CPU")].neuron_fraction < 0.5
    assert by_key[("Potjans-Diesmann", "CPU")].neuron_fraction < 0.5
    # The GPU keeps neuron computation material but not dominant.
    for name in workload_profiles:
        assert 0.05 < by_key[(name, "GPU")].neuron_fraction < 0.6
    text = table1_inventory() + "\n\n" + format_figure3(rows)
    write_output(output_dir, "table1_figure3.txt", text)
