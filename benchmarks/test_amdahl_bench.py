"""Extension benchmark: end-to-end (whole-step) speedup analysis.

Combines the Figure 3 phase model with the Figure 13 array latencies
to answer what Flexon buys per *whole* time step, bounded by Amdahl's
law over the host-side phases. Output:
``benchmarks/output/amdahl.txt``.
"""

from repro.experiments.amdahl import evaluate, format_amdahl

from benchmarks.conftest import write_output


def _evaluate_all(profiles):
    return [evaluate(profile) for profile in profiles.values()]


def test_end_to_end_amdahl(benchmark, workload_profiles, output_dir):
    rows = benchmark(_evaluate_all, workload_profiles)
    by_name = {row.workload: row for row in rows}

    for row in rows:
        # End-to-end gains never exceed the Amdahl bound, and the
        # neuron-phase speedup always exceeds the end-to-end one.
        assert row.end_to_end_speedup <= row.amdahl_bound * 1.0001
        assert row.neuron_speedup > row.end_to_end_speedup
        assert row.end_to_end_speedup > 1.0

    # Neuron-bound RKF45 workloads gain far more end to end than the
    # synapse-bound Euler ones — the Figure 3 motivation, quantified.
    assert (
        by_name["Destexhe-UpDown"].end_to_end_speedup
        > 3 * by_name["Izhikevich"].end_to_end_speedup
    )
    write_output(output_dir, "amdahl.txt", format_amdahl(rows))
