"""Ablation: synapse-type count vs hardware cost and latency.

The paper notes most SNNs use two synapse types while "others use
three or more synapse types (e.g., GABA, AMPA, and NMDA) for more
detailed synapse modeling" — and its Destexhe results hinge on exactly
this. The ablation sweeps 1-4 types and reports: baseline Flexon area
(per-type data paths replicate), folded microprogram length (one
shared datapath pays in cycles instead), and the resulting latency
winner. Output: ``benchmarks/output/ablation_synapse_types.txt``.
"""

from repro.costmodel.synthesis import synthesize, synthesize_folded_neuron
from repro.costmodel.netlist import flexon_inventory
from repro.experiments.common import format_table
from repro.features import features_for_model
from repro.hardware.array import FlexonArray, FoldedFlexonArray
from repro.hardware.constants import prepare_constants
from repro.hardware.microcode import assemble
from repro.models import ModelParameters

from benchmarks.conftest import write_output

DT = 1e-4
N_LOGICAL = 10_000


def _sweep():
    rows = []
    folded_area = synthesize_folded_neuron().area_um2
    flexon_array = FlexonArray()
    folded_array = FoldedFlexonArray()
    features = features_for_model("AdEx")
    for n_types in (1, 2, 3, 4):
        params = ModelParameters(
            n_synapse_types=n_types,
            tau_g=(5e-3, 10e-3, 100e-3, 8e-3)[:max(2, n_types)],
            v_g=(4.33, -1.0, 4.33, -1.0)[:max(2, n_types)],
        )
        program = assemble(features, prepare_constants(params, features, DT))
        flexon_cost = synthesize(
            "flexon", flexon_inventory(n_types), 250e6, activity=0.65
        )
        flexon_us = flexon_array.step_latency_seconds(N_LOGICAL) * 1e6
        folded_us = (
            folded_array.step_latency_seconds(
                N_LOGICAL, cycles_per_neuron=program.n_signals
            )
            * 1e6
        )
        rows.append(
            {
                "n_types": n_types,
                "signals": program.n_signals,
                "flexon_area": flexon_cost.area_um2,
                "area_ratio": flexon_cost.area_um2 / folded_area,
                "flexon_us": flexon_us,
                "folded_us": folded_us,
            }
        )
    return rows


def test_synapse_type_ablation(benchmark, output_dir):
    rows = benchmark(_sweep)
    # Baseline Flexon pays area per type; folded pays cycles per type.
    areas = [row["flexon_area"] for row in rows]
    signals = [row["signals"] for row in rows]
    assert areas == sorted(areas)
    assert signals == sorted(signals)
    # Folded wins AdEx at 1-2 types, loses at 3+ (the Destexhe regime).
    by_types = {row["n_types"]: row for row in rows}
    assert by_types[2]["folded_us"] < by_types[2]["flexon_us"]
    assert by_types[3]["folded_us"] > by_types[3]["flexon_us"]
    table = format_table(
        [
            "Synapse types",
            "AdEx signals",
            "Flexon area um^2",
            "Area ratio vs folded",
            "Flexon us/step",
            "Folded us/step",
        ],
        [
            (
                row["n_types"],
                row["signals"],
                f"{row['flexon_area']:,.0f}",
                f"{row['area_ratio']:.2f}",
                f"{row['flexon_us']:.2f}",
                f"{row['folded_us']:.2f}",
            )
            for row in rows
        ],
    )
    write_output(output_dir, "ablation_synapse_types.txt", table)
