"""Benchmark: regenerate Figures 4-8 (feature behaviour sketches).

The traces come from the fixed-point Flexon hardware model, so this
doubles as a behavioural regression check on the data paths. Output:
``benchmarks/output/figures4to8.txt``.
"""

import numpy as np

from repro.experiments.figures4to8 import format_figures, run, spike_count

from benchmarks.conftest import write_output


def test_figures4_to_8(benchmark, output_dir):
    traces = benchmark.pedantic(run, rounds=1, iterations=1)

    # Figure 4: EXD decays with shrinking increments, LID constantly.
    exd = np.asarray(traces["figure4"]["EXD (exponential)"])
    lid = np.asarray(traces["figure4"]["LID (linear)"])
    exd_steps = -np.diff(exd[:200])
    lid_steps = -np.diff(lid[:200])
    assert exd_steps[0] > exd_steps[-1] > 0
    assert np.allclose(lid_steps, lid_steps[0], atol=1e-6)

    # Figure 5: peak response arrives later for COBE, later still COBA.
    f5 = traces["figure5"]
    assert np.argmax(f5["CUB (instant)"]) < np.argmax(f5["COBE (exponential)"])
    assert np.argmax(f5["COBE (exponential)"]) < np.argmax(f5["COBA (alpha)"])

    # Figure 6: instant initiation fires immediately; QDI/EXI ramp
    # upward on their own before firing.
    f6 = traces["figure6"]
    assert f6["instant (LIF)"][0] < 0.1  # fired and reset at step 0
    qdi = np.asarray(f6["QDI (quadratic)"])
    assert qdi[:5].max() < qdi[5:60].max()  # still climbing after start

    # Figure 7: adaptation reduces the firing rate vs plain LIF; SBT
    # settles near the oscillation level rather than resting at zero.
    f7 = traces["figure7"]
    assert spike_count(f7["ADT (adaptation)"]) < spike_count(f7["plain LIF"])
    assert 0.2 < np.mean(f7["SBT (oscillation, no input)"][-500:]) < 0.6

    # Figure 8: both refractory kinds cut the firing rate under the
    # same strong drive (which cuts harder depends on the constants).
    f8 = traces["figure8"]
    base = spike_count(f8["no refractory"])
    ar = spike_count(f8["AR (absolute)"])
    rr = spike_count(f8["RR (relative)"])
    assert ar < base
    assert rr < base

    write_output(output_dir, "figures4to8.txt", format_figures(traces))
