"""Extension benchmark: event-driven execution energy saving.

Quantifies the paper's LLIF remark — "suitable for event-driven
execution, reducing ... energy consumption" — by measuring the actual
activity factor of a sparse LLIF network on the Flexon model and
scaling the array's dynamic power accordingly. Output:
``benchmarks/output/event_driven.txt``.
"""

import numpy as np

from repro.experiments.common import format_table
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.costmodel.synthesis import flexon_array_cost
from repro.hardware.compiler import FlexonCompiler
from repro.hardware.event_driven import EventDrivenMonitor, event_driven_power
from repro.models.registry import create_model

DT = 1e-4
N = 2_000
STEPS = 1_500


def _measure(spike_probability: float) -> float:
    """Activity factor of an LLIF population under sparse drive."""
    compiled = FlexonCompiler().compile(create_model("LLIF"), DT)
    monitor = EventDrivenMonitor(compiled.instantiate_flexon(N))
    rng = np.random.default_rng(9)
    for _ in range(STEPS):
        weights = (rng.random((2, N)) < spike_probability) * 30.0
        raw = fx_from_float(
            weights * compiled.weight_scale, FLEXON_FORMAT
        )
        monitor.step(raw)
    return monitor.activity_factor


def _sweep():
    return {p: _measure(p) for p in (0.0005, 0.002, 0.01, 0.05)}


def test_event_driven_energy_saving(benchmark, output_dir):
    activity = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # Sparser input -> lower activity factor, monotonically.
    factors = [activity[p] for p in sorted(activity)]
    assert factors == sorted(factors)
    assert factors[0] < 0.5  # very sparse nets mostly idle
    assert factors[-1] > factors[0]

    cost = flexon_array_cost()
    static_fraction = 0.35  # leakage + SRAM retention share
    rows = []
    for probability, factor in sorted(activity.items()):
        power = event_driven_power(
            cost.total_power_w, static_fraction, factor
        )
        saving = 1.0 - power / cost.total_power_w
        rows.append(
            (
                f"{probability:.2%} input rate",
                f"{100 * factor:.1f}%",
                f"{power:.3f}",
                f"{100 * saving:.1f}%",
            )
        )
    text = format_table(
        [
            "Input sparsity",
            "Activity factor",
            "Array power [W]",
            "Energy saving",
        ],
        rows,
    )
    write_header = (
        "Event-driven LLIF execution on the 12-neuron Flexon array "
        f"(always-on power {cost.total_power_w:.3f} W)\n\n"
    )
    (output_dir / "event_driven.txt").write_text(write_header + text + "\n")
