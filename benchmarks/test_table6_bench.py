"""Benchmark: regenerate Table VI (array area and power).

Output: ``benchmarks/output/table6.txt``.
"""

import pytest

from repro.experiments.table6 import format_table6, run

from benchmarks.conftest import write_output


def test_table6_arrays(benchmark, output_dir):
    result = benchmark(run)
    # Shapes: similar/smaller folded footprint, SRAM dominance,
    # folded power higher; totals within 15/25% of the paper.
    assert result.folded.total_area_mm2 < result.flexon.total_area_mm2
    assert result.flexon.sram_area_mm2 > result.flexon.neuron_area_mm2
    assert result.folded.total_power_w > result.flexon.total_power_w
    assert result.flexon.total_area_mm2 == pytest.approx(9.258, rel=0.15)
    assert result.folded.total_area_mm2 == pytest.approx(7.618, rel=0.15)
    assert result.flexon.total_power_w == pytest.approx(0.881, rel=0.25)
    assert result.folded.total_power_w == pytest.approx(1.484, rel=0.25)
    write_output(output_dir, "table6.txt", format_table6(result))
