"""Ablation: fixed-point width vs accuracy (the truncate optimisation).

Section IV-B1 claims the 32-bit / 22-fraction-bit format with truncated
membrane storage does not affect simulation results. This ablation
sweeps the fraction width and measures spike agreement against the
float reference, showing where the claim breaks down. Output:
``benchmarks/output/ablation_fixedpoint.txt``.
"""

import numpy as np

from repro.experiments.common import format_table
from repro.fixedpoint import FixedFormat, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models.registry import create_model

from benchmarks.conftest import write_output

DT = 1e-4


def _agreement(frac_bits: int, steps: int = 600, n: int = 16) -> float:
    """Per-step spike agreement of a reduced-precision AdEx vs float."""
    fmt = FixedFormat(total_bits=frac_bits + 10, frac_bits=frac_bits)
    membrane = FixedFormat(total_bits=frac_bits + 2, frac_bits=frac_bits)
    model = create_model("AdEx")
    compiled = FlexonCompiler(fmt=fmt, membrane_format=membrane).compile(
        model, DT
    )
    hardware = compiled.instantiate_flexon(n)
    reference = model.initial_state(n)
    rng = np.random.default_rng(3)
    agree = 0
    for _ in range(steps):
        weights = (rng.random((2, n)) < 0.08) * 1.5
        weights[1] *= 0.2
        raw = fx_from_float(weights * compiled.weight_scale, fmt)
        fired_hw = hardware.step(raw)
        fired_ref = model.step(reference, weights.copy(), DT)
        agree += int((fired_hw == fired_ref).sum())
    return agree / (steps * n)


def _sweep():
    return {bits: _agreement(bits) for bits in (8, 12, 16, 22, 28)}


def test_fixedpoint_width_ablation(benchmark, output_dir):
    agreements = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    # The paper's 22-bit fraction is effectively lossless; very narrow
    # fractions visibly degrade (eps_m = 0.005 needs ~8+ bits alone).
    assert agreements[22] >= 0.99
    assert agreements[28] >= 0.99
    assert agreements[8] < agreements[22]
    rows = [
        (f"fraction bits = {bits}", f"{100 * a:.2f}%")
        for bits, a in sorted(agreements.items())
    ]
    write_output(
        output_dir,
        "ablation_fixedpoint.txt",
        format_table(["Format", "Spike agreement vs float"], rows),
    )
