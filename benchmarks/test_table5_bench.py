"""Benchmark: regenerate Table V (control signals / microprograms).

Times microprogram assembly for every Table V combination plus every
Table III model. Output: ``benchmarks/output/table5.txt``.
"""

from repro.experiments.table5 import format_table5, run, signals_per_model

from benchmarks.conftest import write_output


def _assemble_everything():
    rows = run()
    counts = signals_per_model()
    return rows, counts


def test_table5_microprograms(benchmark, output_dir):
    rows, counts = benchmark(_assemble_everything)
    by_label = {row.label: row for row in rows}
    # Section V-B's examples:
    assert by_label["CUB + EXD (LIF)"].n_signals == 1
    assert by_label["CUB + EXD (LIF)"].single_neuron_cycles == 2
    # Model-level counts (2 synapse types).
    assert counts["LIF"] == 2
    assert counts["DLIF"] == 7
    assert counts["AdEx"] == 11
    model_lines = "\n".join(
        f"{name:24s} {count:2d} signals" for name, count in counts.items()
    )
    text = (
        format_table5(rows)
        + "\n\nSignals per Table III model (2 synapse types):\n"
        + model_lines
    )
    write_output(output_dir, "table5.txt", text)
