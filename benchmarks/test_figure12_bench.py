"""Benchmark: regenerate Figure 12 (data path / design area & power).

Output: ``benchmarks/output/figure12.txt``.
"""

from repro.experiments.figure12 import format_figure12, run

from benchmarks.conftest import write_output


def test_figure12_synthesis(benchmark, output_dir):
    result = benchmark(run)
    assert 5.0 <= result.area_ratio <= 6.2  # paper: up to 5.84x
    assert result.power_ratio <= 3.44  # paper: up to 3.44x
    costs = result.datapaths
    assert min(costs, key=lambda k: costs[k].area_um2) == "AR"
    assert result.folded.area_um2 < costs["EXI"].area_um2
    assert result.folded.area_um2 < costs["RR"].area_um2
    write_output(output_dir, "figure12.txt", format_figure12(result))
