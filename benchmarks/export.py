"""Export a machine-readable throughput baseline (``BENCH_engine.json``).

Runs the Euler-solved Table I workloads through the simulation backends
and records steps/sec for each, so later changes have a perf trajectory
to compare against:

* ``reference-engine`` — the compiled step-plan fast path (default),
* ``reference-solver`` — the historical dict-state solver path
  (``ReferenceBackend(use_engine=False)``), i.e. the seed baseline,
* ``flexon`` / ``folded-flexon`` — the fixed-point hardware models.

Usage::

    PYTHONPATH=src python benchmarks/export.py [--steps N] [--scale S]

Writes ``BENCH_engine.json`` next to this file. Each workload entry
carries per-backend ``steps_per_sec`` plus the derived
``engine_speedup`` (engine vs. solver reference path).
"""

from __future__ import annotations

import argparse
import pathlib
import platform
import time

from repro.hardware import FlexonBackend, FoldedFlexonBackend
from repro.io import atomic_write_json
from repro.network import ReferenceBackend, Simulator
from repro.workloads import build_workload, get_spec, workload_names
from repro.workloads.builders import DT

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Hardware compilation covers the feature models; run it where the
#: reference engine also applies, so every backend sees the same nets.
BACKENDS = {
    "reference-engine": lambda: ReferenceBackend("Euler", use_engine=True),
    "reference-solver": lambda: ReferenceBackend("Euler", use_engine=False),
    "flexon": lambda: FlexonBackend(dt=DT),
    "folded-flexon": lambda: FoldedFlexonBackend(dt=DT),
}


def measure(workload: str, backend_factory, steps: int, scale: float) -> dict:
    """Steps/sec of one backend on one workload (median of 3 reps)."""
    network = build_workload(workload, scale=scale, seed=5)
    simulator = Simulator(network, backend_factory(), dt=DT, seed=6)
    simulator.run(min(20, steps))  # warm-up: lazy plan binding, caches
    reps = []
    for _ in range(3):
        start = time.perf_counter()
        result = simulator.run(steps, record_spikes=False)
        reps.append(steps / (time.perf_counter() - start))
    reps.sort()
    return {
        "steps_per_sec": reps[1],
        "neurons": network.n_neurons,
        "neuron_updates_per_sec": reps[1] * network.n_neurons,
        "backend": result.backend_name,
    }


def euler_workloads() -> list:
    """The Table I workloads the engine fast path applies to."""
    return [
        name for name in workload_names() if get_spec(name).solver == "Euler"
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=400)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument(
        "--output", type=pathlib.Path, default=OUTPUT
    )
    args = parser.parse_args()
    if args.steps < 1:
        parser.error("--steps must be >= 1")
    if args.scale <= 0:
        parser.error("--scale must be > 0")

    workloads = {}
    for workload in euler_workloads():
        entry = {}
        for key, factory in BACKENDS.items():
            entry[key] = measure(workload, factory, args.steps, args.scale)
            print(
                f"{workload:20s} {key:18s} "
                f"{entry[key]['steps_per_sec']:10.1f} steps/s"
            )
        entry["engine_speedup"] = (
            entry["reference-engine"]["steps_per_sec"]
            / entry["reference-solver"]["steps_per_sec"]
        )
        print(
            f"{workload:20s} engine speedup     "
            f"{entry['engine_speedup']:10.2f}x"
        )
        workloads[workload] = entry

    payload = {
        "dt": DT,
        "steps": args.steps,
        "scale": args.scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": workloads,
        "max_engine_speedup": max(
            entry["engine_speedup"] for entry in workloads.values()
        ),
    }
    atomic_write_json(args.output, payload)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
