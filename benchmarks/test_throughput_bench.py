"""Benchmark: raw software throughput of the three simulation engines.

Not a paper figure — this measures the *reproduction's* own simulation
speed (neuron-updates per second) for the reference float model and
both fixed-point hardware models, so regressions in the vectorised
kernels are caught.
"""

import numpy as np
import pytest

from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware.compiler import FlexonCompiler
from repro.models.registry import create_model

DT = 1e-4
N = 2_000
STEPS = 50


@pytest.fixture(scope="module")
def stimulus():
    rng = np.random.default_rng(0)
    return (rng.random((STEPS, 2, N)) < 0.05) * 1.5


def test_reference_model_throughput(benchmark, stimulus):
    model = create_model("AdEx")
    state = model.initial_state(N)

    def run():
        for step in range(STEPS):
            model.step(state, stimulus[step], DT)

    benchmark(run)


def test_flexon_model_throughput(benchmark, stimulus):
    compiled = FlexonCompiler().compile(create_model("AdEx"), DT)
    neuron = compiled.instantiate_flexon(N)
    raw = fx_from_float(stimulus * compiled.weight_scale, FLEXON_FORMAT)

    def run():
        for step in range(STEPS):
            neuron.step(raw[step])

    benchmark(run)


def test_folded_model_throughput(benchmark, stimulus):
    compiled = FlexonCompiler().compile(create_model("AdEx"), DT)
    neuron = compiled.instantiate_folded(N)
    raw = fx_from_float(stimulus * compiled.weight_scale, FLEXON_FORMAT)

    def run():
        for step in range(STEPS):
            neuron.step(raw[step])

    benchmark(run)
