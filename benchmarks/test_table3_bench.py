"""Benchmark: regenerate Table III with executable verification.

Times the full verification sweep (all 12 models: fixed-point hardware
vs float reference plus design bit-equivalence). Output:
``benchmarks/output/table3.txt``.
"""

from repro.experiments.table3 import format_matrix, format_verification, run

from benchmarks.conftest import write_output


def test_table3_verification(benchmark, output_dir):
    rows = benchmark.pedantic(
        run, kwargs={"steps": 400, "n": 16}, rounds=1, iterations=1
    )
    assert len(rows) == 12
    assert all(row.bit_exact for row in rows)
    assert all(row.spike_match >= 0.97 for row in rows)
    assert all(row.hardware_spikes > 0 for row in rows)
    text = format_matrix() + "\n\n" + format_verification(rows)
    write_output(output_dir, "table3.txt", text)
