"""Benchmark: the Section VI-A functional verification sweep.

Runs every workload on the reference, baseline-Flexon, and folded
backends and compares spike trains. Output:
``benchmarks/output/validation.txt``.
"""

from repro.experiments.validation import format_validation, run

from benchmarks.conftest import write_output


def test_section6a_validation(benchmark, output_dir):
    rows = benchmark.pedantic(
        run, kwargs={"scale": 0.03, "steps": 400}, rounds=1, iterations=1
    )
    assert len(rows) == 10
    # The two designs are bit-identical on every workload.
    assert all(row.designs_identical for row in rows)
    # Population statistics survive fixed point.
    assert all(row.count_agreement >= 0.85 for row in rows)
    # Before chaotic divergence compounds, trains coincide.
    assert all(row.early_overlap >= 0.7 for row in rows)
    write_output(output_dir, "validation.txt", format_validation(rows))
