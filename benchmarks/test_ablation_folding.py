"""Ablation: folding trade-off — array size vs microprogram length.

The paper fixes 12 baseline neurons vs 72 folded neurons from the
5.43x area ratio. This ablation sweeps equal-area folded arrays across
microprogram lengths, mapping where the folded design stops winning —
the general form of the Destexhe crossover of Section VI-C. Output:
``benchmarks/output/ablation_folding.txt``.
"""

from repro.costmodel.synthesis import (
    synthesize_flexon_neuron,
    synthesize_folded_neuron,
)
from repro.experiments.common import format_table
from repro.hardware.array import FlexonArray, FoldedFlexonArray

from benchmarks.conftest import write_output

N_LOGICAL = 10_000


def _crossover_table():
    """Latency ratio (folded/flexon) per microprogram length."""
    flexon_area = synthesize_flexon_neuron().area_um2
    folded_area = synthesize_folded_neuron().area_um2
    # Equal-silicon sizing, like the paper's 12 vs 72 (5.43x ratio).
    n_folded = int(12 * flexon_area / folded_area)
    flexon = FlexonArray(12)
    folded = FoldedFlexonArray(n_folded)
    rows = []
    for signals in (1, 3, 7, 10, 12, 15, 20):
        flexon_latency = flexon.step_latency_seconds(N_LOGICAL)
        folded_latency = folded.step_latency_seconds(
            N_LOGICAL, cycles_per_neuron=signals
        )
        rows.append(
            (
                signals,
                f"{folded_latency * 1e6:.2f}",
                f"{flexon_latency * 1e6:.2f}",
                f"{folded_latency / flexon_latency:.2f}",
            )
        )
    return n_folded, rows


def test_folding_crossover(benchmark, output_dir):
    n_folded, rows = benchmark(_crossover_table)
    # The equal-area folded array holds ~5-6x the neurons.
    assert 60 <= n_folded <= 76
    ratios = [float(row[3]) for row in rows]
    # Short programs: folded wins clearly; very long programs: the
    # single-cycle baseline wins — the Destexhe regime.
    assert ratios[0] < 0.8
    assert ratios[-1] > 1.0
    # Monotone: each extra signal costs the folded array throughput.
    assert ratios == sorted(ratios)
    text = format_table(
        [
            "Microprogram signals",
            "Folded us/step",
            "Flexon us/step",
            "Folded/Flexon",
        ],
        rows,
    )
    write_output(
        output_dir,
        "ablation_folding.txt",
        f"Equal-area arrays: 12 Flexon vs {n_folded} folded neurons, "
        f"{N_LOGICAL} logical neurons\n\n" + text,
    )
