"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure. The rendered output
is also written to ``benchmarks/output/`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
reproduced tables on disk.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Scale/steps used when profiling workloads inside benchmarks. Small
#: enough for minutes-long total runtime, large enough for stable rates.
BENCH_SCALE = 0.03
BENCH_STEPS = 200


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def workload_profiles():
    """Profile all ten workloads once per benchmark session."""
    from repro.experiments.common import profile_workload
    from repro.workloads import workload_names

    return {
        name: profile_workload(name, scale=BENCH_SCALE, steps=BENCH_STEPS)
        for name in workload_names()
    }


def write_output(output_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one regenerated table/figure."""
    (output_dir / name).write_text(text + "\n")
