"""Vogels-Abbott on all three backends, with phase profiling.

Reproduces the paper's methodology end to end on one Table I workload:
build the Vogels-Abbott network (DLIF, conductance-based, self-
sustained irregular activity), run it on the float reference and both
digital-neuron backends, verify the spike statistics agree and the two
hardware designs agree *exactly*, and show the modeled neuron-
computation latency of each platform for one time step at full scale
(a single row of Figure 13).

Run:  python examples/vogels_abbott_network.py
"""

from repro.costmodel.cpu_gpu import CPU_SPEC, GPU_SPEC, neuron_phase_latency
from repro.experiments.common import profile_workload
from repro.hardware import (
    FlexonArray,
    FlexonBackend,
    FlexonCompiler,
    FoldedFlexonArray,
    FoldedFlexonBackend,
)
from repro.network import ReferenceBackend, Simulator
from repro.workloads import build_workload, get_spec

DT = 1e-4
SCALE = 0.05
STEPS = 2_000


def main() -> None:
    spec = get_spec("Vogels-Abbott")
    print(f"Workload: {spec}\n")

    results = {}
    for label, backend in (
        ("reference (Euler)", ReferenceBackend("Euler")),
        ("baseline Flexon", FlexonBackend(DT)),
        ("folded Flexon", FoldedFlexonBackend(DT)),
    ):
        network = build_workload("Vogels-Abbott", scale=SCALE, seed=3)
        result = Simulator(network, backend, dt=DT, seed=4).run(STEPS)
        rate = result.total_spikes() / network.n_neurons / (STEPS * DT)
        results[label] = result
        print(f"{label:18s}: {result.total_spikes():6d} spikes "
              f"({rate:.1f} Hz)")

    flexon_spikes = {
        name: results["baseline Flexon"].spikes.result(name).spike_pairs()
        for name in ("exc", "inh")
    }
    folded_spikes = {
        name: results["folded Flexon"].spikes.result(name).spike_pairs()
        for name in ("exc", "inh")
    }
    print(f"\nbaseline == folded spike trains: {flexon_spikes == folded_spikes}")

    # One Figure 13 row: full-scale neuron-computation latency.
    profile = profile_workload("Vogels-Abbott", scale=SCALE, steps=400)
    n = spec.paper_neurons
    network = build_workload("Vogels-Abbott", scale=0.01, seed=0)
    model = next(iter(network.populations.values())).model
    signals = FlexonCompiler().compile(model, DT).program.n_signals
    platforms = {
        "CPU (NEST, RKF45)": neuron_phase_latency(
            CPU_SPEC, n, profile.ops_per_update, profile.evaluations_per_step
        ),
        "GPU (GeNN, Euler)": neuron_phase_latency(
            GPU_SPEC, n, profile.ops_per_update, 1.0
        ),
        "Flexon array (12)": FlexonArray().step_latency_seconds(n),
        "folded array (72)": FoldedFlexonArray().step_latency_seconds(
            n, cycles_per_neuron=signals
        ),
    }
    print(f"\nModeled neuron-computation latency per 0.1 ms step "
          f"({n:,} neurons, DLIF = {signals} folded signals):")
    for label, latency in platforms.items():
        print(f"  {label:18s} {latency * 1e6:9.2f} us")


if __name__ == "__main__":
    main()
