"""Section VII-A: hybrid simulation of a mixed AdEx + HH network.

Hodgkin-Huxley needs divisions, which Flexon's data paths lack, so HH
populations cannot be compiled. The hybrid backend keeps them on the
general-purpose (reference) path while offloading every supported
population to the digital-neuron array — "we can still accelerate SNN
simulations by offloading the supported neuron models to Flexon."

This example builds a cortical AdEx network innervating a small HH
population, shows the compiler rejecting HH with actionable guidance,
runs the hybrid simulation, and reports the offloaded fraction.

Run:  python examples/hybrid_adex_hh.py
"""

import numpy as np

from repro.errors import CompilationError
from repro.hardware import FlexonCompiler, HybridBackend
from repro.models import HodgkinHuxley
from repro.network import Network, PoissonStimulus, Simulator

DT = 1e-4
STEPS = 3_000


def build_mixed_network() -> Network:
    rng = np.random.default_rng(11)
    net = Network("adex+hh")
    adex = net.add_population("cortex", 80, "AdEx")
    net.add_population("hh_cells", 8, "HH")
    net.connect("cortex", "cortex", probability=0.1, weight=0.08, rng=rng)
    # AdEx spikes drive the HH cells with strong current kicks (HH works
    # in its native uA/cm^2 units).
    net.connect("cortex", "hh_cells", probability=0.4, weight=4.0, rng=rng)
    net.add_stimulus(
        PoissonStimulus(adex, rate_hz=700.0, weight=0.15, dt=DT, n_sources=10)
    )
    return net


def main() -> None:
    compiler = FlexonCompiler()
    print("Trying to compile Hodgkin-Huxley for Flexon...")
    try:
        compiler.compile(HodgkinHuxley(), DT)
    except CompilationError as error:
        print(f"  CompilationError: {error}\n")

    network = build_mixed_network()
    backend = HybridBackend(DT, folded=True)
    simulator = Simulator(network, backend, dt=DT, seed=12)
    result = simulator.run(STEPS)

    print(f"offloaded populations: "
          f"{[n for n, on in backend.offloaded.items() if on]}")
    print(f"software populations:  "
          f"{[n for n, on in backend.offloaded.items() if not on]}")
    print(f"neurons on the digital-neuron array: "
          f"{100 * backend.offloaded_fraction():.0f}%\n")

    duration = STEPS * DT
    for name, population in network.populations.items():
        record = result.spikes.result(name)
        rate = record.n_spikes / population.n / duration
        print(f"{name:10s}: {record.n_spikes:6d} spikes ({rate:6.1f} Hz)")

    hh_state = backend.state_of("hh_cells")
    print(f"\nHH gates after {duration * 1e3:.0f} ms: "
          f"m={hh_state['m'].mean():.3f} h={hh_state['h'].mean():.3f} "
          f"n={hh_state['n'].mean():.3f}")


if __name__ == "__main__":
    main()
