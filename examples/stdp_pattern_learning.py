"""Unsupervised pattern learning with STDP, neurons on Flexon.

The paper motivates SNNs with unsupervised digit/object recognition via
spike-timing-dependent plasticity, and its system split keeps synapse
calculation (where STDP lives) on the host while Flexon accelerates
neuron computation. This example runs exactly that split:

* 60 input channels; channels 0-19 carry a *pattern* (they burst
  together every 30 ms), channels 20-59 fire independent Poisson noise
  at a matched mean rate;
* one readout population of LIF neurons on the **folded-Flexon
  backend** receives all channels through plastic synapses;
* pair-based STDP potentiates the causally useful pattern channels and
  depresses the noise channels — after training the readout is
  selective to the pattern.

Run:  python examples/stdp_pattern_learning.py
"""


from repro.hardware import FoldedFlexonBackend
from repro.network import Network, PatternStimulus, PoissonStimulus, Simulator
from repro.plasticity import PairSTDP

DT = 1e-4
TRAIN_STEPS = 40_000  # 4 s
N_PATTERN = 20
N_NOISE = 40
N_INPUT = N_PATTERN + N_NOISE


def build() -> tuple:
    net = Network("stdp-learning")
    inputs = net.add_population("inputs", N_INPUT, "LIF")
    net.add_population("readout", 4, "LIF")
    projection = net.connect(
        "inputs", "readout", probability=1.0, weight=4.0, delay_steps=1
    )
    # The pattern: channels 0..19 burst together every 300 steps.
    pattern_channels = list(range(N_PATTERN))
    net.add_stimulus(
        PatternStimulus(
            inputs,
            {0: pattern_channels, 2: pattern_channels},
            weight=300.0,
            period=300,
        )
    )
    # Matched-rate independent noise on channels 20..59 (two pattern
    # events per 300 steps ~ 66 Hz equivalent drive).
    net.add_stimulus(
        PoissonStimulus(
            inputs,
            rate_hz=66.0,
            weight=300.0,
            dt=DT,
            neuron_slice=slice(N_PATTERN, N_INPUT),
        )
    )
    rule = PairSTDP(
        a_plus=0.10, a_minus=0.055, tau_plus=10e-3, tau_minus=30e-3,
        w_min=0.0, w_max=12.0,
    )
    net.add_plasticity(projection, rule)
    return net, projection, rule


def channel_means(projection) -> tuple:
    pre_of = projection.pre_of_synapses()
    pattern = projection.weights[pre_of < N_PATTERN].mean()
    noise = projection.weights[pre_of >= N_PATTERN].mean()
    return pattern, noise


def main() -> None:
    net, projection, rule = build()
    before = channel_means(projection)
    print(f"initial weights: pattern {before[0]:.2f}, noise {before[1]:.2f}")

    simulator = Simulator(net, FoldedFlexonBackend(DT), dt=DT, seed=21)
    result = simulator.run(TRAIN_STEPS)
    readout_rate = (
        result.spikes.result("readout").n_spikes / 4 / (TRAIN_STEPS * DT)
    )
    after = channel_means(projection)
    print(f"after {TRAIN_STEPS * DT:.1f} s of training "
          f"(readout at {readout_rate:.1f} Hz):")
    print(f"  pattern channels: {after[0]:.2f}  "
          f"({after[0] - before[0]:+.2f})")
    print(f"  noise channels  : {after[1]:.2f}  "
          f"({after[1] - before[1]:+.2f})")
    selectivity = after[0] / max(after[1], 1e-9)
    print(f"  selectivity (pattern/noise): {selectivity:.1f}x")
    if selectivity > 1.5:
        print("\nThe readout became pattern-selective: STDP potentiated the "
              "correlated channels\nwhile the noise channels drifted down — "
              "with every neuron update running on the\nfixed-point folded-"
              "Flexon model.")


if __name__ == "__main__":
    main()
