"""Brunel's network states, measured with the analysis toolkit.

Brunel (2000) — the Table I workload — showed that a sparse E/I network
of identical neurons visits qualitatively different dynamical states as
the inhibition/excitation ratio ``g`` and the external drive change:
synchronous-regular (SR) when excitation dominates, and
asynchronous-irregular (AI) when inhibition dominates. This example
sweeps ``g`` on the reproduced workload topology, runs each network on
the baseline-Flexon backend, and reports the regime statistics
(rate, ISI coefficient of variation, population synchrony).

Run:  python examples/brunel_regimes.py
"""

from repro.analysis import cv_isi, population_rate_hz, synchrony_index
from repro.experiments.common import format_table
from repro.hardware import FlexonBackend
from repro.network import Simulator
from repro.workloads.brunel import SPEC
from repro.workloads.builders import build_ei_network

DT = 1e-4
STEPS = 3000
SCALE = 0.05


def run_regime(g: float):
    """Simulate the Brunel topology at inhibition ratio g."""
    exc_weight = 0.4
    network = build_ei_network(
        SPEC,
        SCALE,
        seed=1,
        exc_weight=exc_weight,
        inh_weight=-g * exc_weight,
        stimulus_rate_hz=100.0,
        stimulus_weight=exc_weight,
        n_stimulus_sources=5,
    )
    result = Simulator(network, FlexonBackend(DT), dt=DT, seed=2).run(STEPS)
    record = result.spikes.result("exc")
    n = network.populations["exc"].n
    return (
        population_rate_hz(record, n, STEPS, DT),
        cv_isi(record),
        synchrony_index(record, n, STEPS),
    )


def classify(rate: float, cv: float, chi: float) -> str:
    if rate < 1.0:
        return "quiescent"
    irregular = cv > 0.5
    synchronous = chi > 0.3
    return {
        (False, False): "asynchronous-regular (AR)",
        (False, True): "synchronous-regular (SR)",
        (True, False): "asynchronous-irregular (AI)",
        (True, True): "synchronous-irregular (SI)",
    }[(irregular, synchronous)]


def main() -> None:
    print(f"Brunel topology at scale {SCALE} "
          f"({STEPS * DT * 1e3:.0f} ms per point), neurons on Flexon\n")
    rows = []
    for g in (1.0, 3.0, 5.0, 8.0):
        rate, cv, chi = run_regime(g)
        rows.append(
            (
                f"g = {g:.0f}",
                f"{rate:.1f}",
                f"{cv:.2f}" if cv == cv else "n/a",
                f"{chi:.3f}" if chi == chi else "n/a",
                classify(rate, cv, chi),
            )
        )
    print(
        format_table(
            ["Inhibition ratio", "Rate [Hz]", "ISI CV", "Synchrony", "Regime"],
            rows,
        )
    )
    print("\nStrong inhibition (g >= 4) drives the network into Brunel's "
          "asynchronous-irregular\nstate — the regime the Table I row "
          "simulates — with Poisson-like ISI statistics.")


if __name__ == "__main__":
    main()
