"""Design-space exploration around the paper's two array designs.

Sweeps the number of physical neurons in each array style under an
equal-silicon budget and reports, per Table III model, which design
delivers lower neuron-computation latency — generalising the paper's
"folded usually wins, except for long microprograms" observation
(Section VI-C) beyond the fixed 12-vs-72 configuration.

Run:  python examples/design_space.py
"""

from repro.costmodel.synthesis import (
    synthesize_flexon_neuron,
    synthesize_folded_neuron,
)
from repro.experiments.common import format_table
from repro.features import MODEL_FEATURES
from repro.hardware import FlexonArray, FlexonCompiler, FoldedFlexonArray
from repro.models import create_model

DT = 1e-4
N_LOGICAL = 10_000


def main() -> None:
    flexon_cost = synthesize_flexon_neuron()
    folded_cost = synthesize_folded_neuron()
    ratio = flexon_cost.area_um2 / folded_cost.area_um2
    print(f"one Flexon neuron  : {flexon_cost.area_um2:,.0f} um^2, "
          f"{flexon_cost.power_w * 1e3:.1f} mW")
    print(f"one folded neuron  : {folded_cost.area_um2:,.0f} um^2, "
          f"{folded_cost.power_w * 1e3:.1f} mW")
    print(f"area ratio         : {ratio:.2f}x "
          f"(the paper sizes 12 vs 72 from 5.43x)\n")

    compiler = FlexonCompiler()
    signals = {
        name: compiler.compile(create_model(name), DT).program.n_signals
        for name in MODEL_FEATURES
    }

    print(f"Latency per 0.1 ms step for {N_LOGICAL:,} logical neurons, "
          f"equal-silicon arrays:\n")
    rows = []
    for n_flexon in (6, 12, 24):
        n_folded = int(n_flexon * ratio)
        flexon = FlexonArray(n_flexon)
        folded = FoldedFlexonArray(n_folded)
        flexon_us = flexon.step_latency_seconds(N_LOGICAL) * 1e6
        for name, count in sorted(signals.items(), key=lambda kv: kv[1]):
            folded_us = (
                folded.step_latency_seconds(N_LOGICAL, cycles_per_neuron=count)
                * 1e6
            )
            winner = "folded" if folded_us < flexon_us else "Flexon"
            rows.append(
                (
                    f"{n_flexon} vs {n_folded}",
                    name,
                    count,
                    f"{flexon_us:.1f}",
                    f"{folded_us:.1f}",
                    winner,
                )
            )
    print(
        format_table(
            [
                "Array sizes",
                "Model",
                "Signals",
                "Flexon us",
                "Folded us",
                "Winner",
            ],
            rows,
        )
    )
    print("\nLong microprograms (AdEx with 3 synapse types, gsfa_grr) are "
          "where the single-cycle design catches up — the Destexhe "
          "crossover of Figure 13.")


if __name__ == "__main__":
    main()
