"""The neuron-model zoo: every Table III model on Flexon hardware.

Drives one neuron of each model with the same periodic input burst
pattern and renders ASCII spike rasters plus membrane summaries,
making the behavioural differences of the biologically common features
visible: LLIF's linear decay, DLIF's conductance kernels, Izhikevich /
AdEx adaptation (inter-spike intervals stretching), QIF/EIF's delayed
initiation, and the gsfa_grr model's refractory rate cap.

Run:  python examples/single_neuron_zoo.py
"""

import numpy as np

from repro.features import MODEL_FEATURES
from repro.fixedpoint import FLEXON_FORMAT, fx_from_float
from repro.hardware import FlexonCompiler
from repro.models import create_model

DT = 1e-4
STEPS = 3_000  # 300 ms
BURST_PERIOD = 500  # a 20-step input burst every 50 ms
BURST_LEN = 200

#: CUB models integrate currents (need > theta); conductance models
#: integrate jumps.
DRIVE = {"LIF": 30.0, "LLIF": 30.0, "SLIF": 30.0}
DEFAULT_DRIVE = 1.2


def run_model(name: str):
    model = create_model(name)
    compiled = FlexonCompiler().compile(model, DT)
    neuron = compiled.instantiate_flexon(1)
    drive = DRIVE.get(name, DEFAULT_DRIVE)
    n_types = model.parameters.n_synapse_types
    spikes = []
    for step in range(STEPS):
        in_burst = (step % BURST_PERIOD) < BURST_LEN
        weights = np.zeros((n_types, 1))
        if in_burst and step % 2 == 0:
            weights[0, 0] = drive
        raw = fx_from_float(weights * compiled.weight_scale, FLEXON_FORMAT)
        if neuron.step(raw)[0]:
            spikes.append(step)
    return spikes, compiled


def raster(spikes, width: int = 100) -> str:
    bins = np.zeros(width, dtype=bool)
    for step in spikes:
        bins[min(width - 1, step * width // STEPS)] = True
    return "".join("|" if hit else "." for hit in bins)


def main() -> None:
    print(f"{STEPS * DT * 1e3:.0f} ms per row; bursts drive the first "
          f"{BURST_LEN * DT * 1e3:.0f} ms of every "
          f"{BURST_PERIOD * DT * 1e3:.0f} ms window\n")
    for name in MODEL_FEATURES:
        spikes, compiled = run_model(name)
        features = "+".join(f.value for f in MODEL_FEATURES[name])
        print(f"{name:22s} [{features}]")
        print(f"  {raster(spikes)}  {len(spikes)} spikes, "
              f"{compiled.program.n_signals} folded signals")
        if len(spikes) >= 3:
            intervals = np.diff(spikes)
            print(f"  first ISI {intervals[0]} steps, "
                  f"last ISI {intervals[-1]} steps")
        print()


if __name__ == "__main__":
    main()
