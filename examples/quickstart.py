"""Quickstart: build a small SNN and run it on spatially folded Flexon.

Builds a 100-neuron recurrent LIF network with Poisson drive, simulates
one biological second on the folded-Flexon backend, and cross-checks
the firing rate against the float reference backend — a miniature
version of the paper's Section VI-A methodology.

Run:  python examples/quickstart.py
"""

from repro import Network, PoissonStimulus, ReferenceBackend, Simulator
from repro.hardware import FoldedFlexonBackend

DT = 1e-4  # the paper's 0.1 ms time step
STEPS = 10_000  # 1 s of biological time


def build_network() -> Network:
    net = Network("quickstart")
    pop = net.add_population("exc", 100, "LIF")
    # LIF integrates currents: weights are in current units, and a
    # sustained input above theta (= 1.0 after shift & scale) fires.
    net.connect("exc", "exc", probability=0.1, weight=15.0)
    net.add_stimulus(
        PoissonStimulus(pop, rate_hz=400.0, weight=40.0, dt=DT, n_sources=2)
    )
    return net


def main() -> None:
    print("Simulating on the folded-Flexon fixed-point backend...")
    hardware = Simulator(
        build_network(), FoldedFlexonBackend(DT), dt=DT, seed=1
    ).run(STEPS)

    print("Simulating on the float reference backend (Brian substitute)...")
    reference = Simulator(
        build_network(), ReferenceBackend("Euler"), dt=DT, seed=1
    ).run(STEPS)

    duration = STEPS * DT
    hw_rate = hardware.total_spikes() / 100 / duration
    ref_rate = reference.total_spikes() / 100 / duration
    print(f"\nfolded Flexon : {hardware.total_spikes():6d} spikes "
          f"({hw_rate:.1f} Hz mean rate)")
    print(f"reference      : {reference.total_spikes():6d} spikes "
          f"({ref_rate:.1f} Hz mean rate)")
    print("\nPer-phase wall-clock share (this process, not the paper's "
          "hardware model):")
    for phase, fraction in hardware.phase_fractions().items():
        print(f"  {phase:10s} {100 * fraction:5.1f}%")


if __name__ == "__main__":
    main()
