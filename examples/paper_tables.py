"""Regenerate every paper table and figure in one run.

The one-stop reproduction script: prints Table I, Figure 3, Table III
(matrix + executable verification), Table V, Figure 12, Table VI,
Figure 13, and the Section VI-A validation, in paper order.

Run:  python examples/paper_tables.py [--scale 0.05] [--steps 300]
(Default scale keeps the run to a few minutes; larger scales sharpen
the measured rates.)
"""

import argparse

from repro.experiments import figure3, figure12, figure13, figures4to8
from repro.experiments import table3, table5, table6, validation


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--steps", type=int, default=400)
    args = parser.parse_args()

    banner("Table I: collected SNN workloads")
    print(figure3.table1_inventory())

    banner("Figure 3: per-phase latency breakdown (CPU & GPU models)")
    rows3 = figure3.run(scale=args.scale, steps=args.steps)
    print(figure3.format_figure3(rows3))

    banner("Figures 4-8: feature behaviours (fixed-point hardware traces)")
    print(figures4to8.format_figures(figures4to8.run()))

    banner("Table III: feature combinations per neuron model")
    print(table3.format_matrix())
    print("\nExecutable verification (hardware vs float reference):\n")
    print(table3.format_verification(table3.run(steps=args.steps)))

    banner("Table V: folded-Flexon control signals")
    print(table5.format_table5(table5.run()))

    banner("Figure 12: power and area of data paths and both Flexons")
    print(figure12.format_figure12(figure12.run()))

    banner("Table VI: array area and power")
    print(table6.format_table6(table6.run()))

    banner("Figure 13: speedups and energy-efficiency improvements")
    rows13 = figure13.run(scale=args.scale, steps=args.steps)
    print(figure13.format_figure13(rows13))

    banner("Section VI-A: output-spike verification vs software reference")
    print(
        validation.format_validation(
            validation.run(scale=args.scale, steps=args.steps)
        )
    )


if __name__ == "__main__":
    main()
